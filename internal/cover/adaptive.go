package cover

import (
	"sort"

	"github.com/actindex/act/internal/cellid"
	"github.com/actindex/act/internal/geo"
	"github.com/actindex/act/internal/geom"
	"github.com/actindex/act/internal/grid"
)

// QuerySample summarizes an observed query-point distribution for adaptive
// refinement. The paper (§I) sketches this as future work: "adaptively
// alter the trie structure based on the distribution of query points to
// provide higher precision where it is actually needed".
//
// A sample is a sorted list of leaf cells of representative query points;
// the number of sample points inside any cell is then a binary-search range
// count.
type QuerySample struct {
	leaves []cellid.ID
}

// NewQuerySample builds a sample from observed query points.
func NewQuerySample(g grid.Grid, points []geo.LatLng) *QuerySample {
	leaves := make([]cellid.ID, len(points))
	for i, ll := range points {
		leaves[i] = grid.LeafCell(g, ll)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	return &QuerySample{leaves: leaves}
}

// Len returns the number of sampled points.
func (q *QuerySample) Len() int { return len(q.leaves) }

// CountIn returns how many sampled points fall inside the cell.
func (q *QuerySample) CountIn(cell cellid.ID) int {
	lo := sort.Search(len(q.leaves), func(i int) bool { return q.leaves[i] >= cell.RangeMin() })
	hi := sort.Search(len(q.leaves), func(i int) bool { return q.leaves[i] > cell.RangeMax() })
	return hi - lo
}

// CoverAdaptive computes a covering under a cell budget, spending the
// budget where the query distribution concentrates: the refinement
// priority of a boundary cell is its diagonal weighted by the number of
// sampled queries hitting it. Cells nobody queries stay coarse; hot cells
// are driven down to the precision bound. The covering remains sound
// (interior cells exact, boundary cells cover the rest); only the
// effective precision varies spatially.
//
// maxCells bounds the covering size. The returned covering reports the
// worst-case AchievedPrecisionMeters across all boundary cells; use
// (*Covering).NumCells to see the budget consumption.
func (c *Coverer) CoverAdaptive(p *geo.Polygon, sample *QuerySample, maxCells int) (*Covering, error) {
	if maxCells <= 0 {
		return c.Cover(p)
	}
	face, poly, err := grid.ProjectPolygon(c.g, p)
	if err != nil {
		return nil, err
	}
	start := c.startCell(face, poly)

	cov := &Covering{}
	pq := &cellHeap{}
	push := func(id cellid.ID) {
		switch poly.RelateRect(grid.CellRect(id)) {
		case geom.Disjoint:
		case geom.Contained:
			cov.Interior = append(cov.Interior, id)
		default:
			diag := grid.CellDiagonalMeters(c.g, id)
			// Weight by query pressure: a cell with q sampled queries
			// and diagonal d causes expected false-positive mass
			// proportional to q·d. Unqueried cells get weight d alone
			// so the covering still converges without samples.
			weight := diag * float64(1+sample.CountIn(id))
			if diag <= c.precision {
				// Already meets ε; no further refinement needed.
				cov.Boundary = append(cov.Boundary, id)
				if diag > cov.AchievedPrecisionMeters {
					cov.AchievedPrecisionMeters = diag
				}
				return
			}
			pq.push(cellEntry{id: id, diag: weight})
		}
	}
	push(start)
	var final []cellEntry
	for pq.Len() > 0 {
		total := len(cov.Interior) + len(cov.Boundary) + pq.Len() + len(final)
		if total+3 > maxCells {
			break
		}
		e := pq.pop()
		if e.id.Level() >= c.maxLevel {
			final = append(final, e)
			continue
		}
		for _, child := range e.id.Children() {
			push(child)
		}
	}
	for pq.Len() > 0 {
		final = append(final, pq.pop())
	}
	for _, e := range final {
		cov.Boundary = append(cov.Boundary, e.id)
		if d := grid.CellDiagonalMeters(c.g, e.id); d > cov.AchievedPrecisionMeters {
			cov.AchievedPrecisionMeters = d
		}
	}
	sortCells(cov.Boundary)
	sortCells(cov.Interior)
	return cov, nil
}
