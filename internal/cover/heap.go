package cover

import "github.com/actindex/act/internal/cellid"

// cellEntry pairs a boundary cell with its precomputed diagonal so the
// budgeted coverer can refine the loosest cell first.
type cellEntry struct {
	id   cellid.ID
	diag float64
}

// cellHeap is a max-heap of cellEntry ordered by diagonal length.
type cellHeap struct {
	entries []cellEntry
}

// Len returns the number of entries.
func (h *cellHeap) Len() int { return len(h.entries) }

// peek returns the entry with the largest diagonal.
func (h *cellHeap) peek() cellEntry { return h.entries[0] }

// push inserts an entry.
func (h *cellHeap) push(e cellEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].diag >= h.entries[i].diag {
			break
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

// pop removes and returns the entry with the largest diagonal.
func (h *cellHeap) pop() cellEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.entries) && h.entries[l].diag > h.entries[largest].diag {
			largest = l
		}
		if r < len(h.entries) && h.entries[r].diag > h.entries[largest].diag {
			largest = r
		}
		if largest == i {
			return top
		}
		h.entries[i], h.entries[largest] = h.entries[largest], h.entries[i]
		i = largest
	}
}
