package act

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"unsafe"
)

// mapping owns one read-only file mapping. close is idempotent so an
// explicit Index.Close and the GC-driven cleanup can race without a double
// munmap.
type mapping struct {
	data []byte
	once sync.Once
	err  error
}

func (m *mapping) close() error {
	m.once.Do(func() { m.err = munmapFile(m.data) })
	return m.err
}

// hostLittleEndian reports whether this machine stores integers in the v3
// file byte order. Big-endian hosts read flat files through the copying
// path, which decodes word by word.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// OpenIndex opens an index file for serving without deserializing it:
// version-3 files (the WriteTo layout) are memory-mapped read-only and the
// trie arena and lookup table are served in place, aliased straight over
// the page-cache-backed mapping. No arena-sized heap allocation happens and
// no byte of the trie is copied — the open cost is the header read plus one
// structural validation pass, and the kernel pages the arena in on demand,
// so a warm page cache makes open and reload near-instant even at
// census scale. The geometry section (when present) is still copied: exact
// refinement mutates R-tree state, which cannot live in a read-only map.
//
// Fallbacks keep OpenIndex total: version-1/2 files, platforms without
// mmap, and big-endian hosts all load via the copying ReadIndex path —
// the result serves identically, it just pays the copy. Check
// [Index.Mapped] to see which path was taken.
//
// A mapped index is immutable (Insert, Remove, and Compact report
// ErrImmutable, as for any deserialized index) and holds the mapping until
// [Index.Close] or, if Close is never called, until the index is garbage
// collected. Close must not race in-flight lookups: swing traffic off the
// index first (e.g. via [Swappable]), or simply drop the last reference
// and let the collector release the mapping after the final reader.
//
// The copying reader verifies the arena checksum; the mapped path skips
// that full-file pass by design and relies on the same structural
// validation every deserialized trie gets, which already guarantees that
// even a corrupted or hostile file cannot drive lookups out of bounds.
func OpenIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// The mapping outlives the descriptor; the fallback path finishes
	// reading before this deferred close runs.
	defer f.Close()

	var head [flatHeaderSize]byte
	if _, err := io.ReadFull(f, head[:8]); err != nil {
		return nil, fmt.Errorf("act: read magic: %w", err)
	}
	if string(head[:4]) != indexMagic {
		return nil, fmt.Errorf("act: bad index magic %q", head[:4])
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version < 1 || version > indexVersionSparse {
		return nil, fmt.Errorf("act: unsupported index version %d", version)
	}
	if version < 3 || !mmapSupported || !hostLittleEndian() {
		return readIndexFrom(f)
	}
	if _, err := io.ReadFull(f, head[8:]); err != nil {
		return nil, fmt.Errorf("act: read flat header: %w", err)
	}
	h, err := decodeFlatHeader(&head)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	// The map-time validator is strict about length: a truncated file would
	// otherwise SIGBUS on first touch of the missing pages, and trailing
	// bytes mean the file is not what WriteTo produced.
	if fi.Size() != int64(h.fileSize) {
		return nil, fmt.Errorf("act: file is %d bytes, header says %d", fi.Size(), h.fileSize)
	}
	data, err := mmapFile(f, int64(h.fileSize))
	if err != nil {
		// A filesystem without mmap support (or an exotic size limit) still
		// holds a perfectly good index; serve it through the copy path.
		return readIndexFrom(f)
	}
	m := &mapping{data: data}
	ix, err := assembleMapped(h, m)
	if err != nil {
		m.close()
		return nil, err
	}
	return ix, nil
}

// assembleMapped aliases the flat sections of a mapped flat file (v3 or
// v4) and builds the serving index around them.
func assembleMapped(h *flatHeader, m *mapping) (*Index, error) {
	arenaWords := h.numNodes * uint64(h.fanout)
	var nodes []uint64
	if arenaWords > 0 {
		nodes = unsafe.Slice((*uint64)(unsafe.Pointer(&m.data[h.arenaOff])), arenaWords)
	}
	var table []uint32
	if h.tableLen > 0 {
		table = unsafe.Slice((*uint32)(unsafe.Pointer(&m.data[h.tableOff])), h.tableLen)
	}
	var ids []uint32
	if h.version >= indexVersionSparse {
		// The id column is tiny relative to the arena; decode (and
		// validate) a heap copy rather than aliasing the mapping, so the
		// index keeps working even after the mapping is closed mid-teardown.
		var err error
		if ids, err = decodeIDColumn(m.data[h.idsOff():h.idsEnd()], h.idSpace); err != nil {
			return nil, err
		}
	}
	var geomSrc io.Reader
	if h.hasGeom {
		geomSrc = bytes.NewReader(m.data[h.geomOff:])
	}
	ix, err := assembleFlat(h, nodes, table, ids, geomSrc)
	if err != nil {
		return nil, err
	}
	ix.mapped = m
	// GC-driven release: when the last reference to the index goes away —
	// e.g. a Swappable swung a reload in and the final in-flight request
	// finished — the mapping is unmapped without anyone calling Close.
	// KeepAlive fences in the read paths guarantee the index stays
	// reachable until the last instruction that touches mapped memory.
	ix.cleanup = runtime.AddCleanup(ix, func(mp *mapping) { mp.close() }, m)
	return ix, nil
}

// readIndexFrom rewinds the file and loads it through the streaming copy
// path — OpenIndex's fallback for legacy versions and unmappable files.
func readIndexFrom(f *os.File) (*Index, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ReadIndex(f)
}

// Mapped reports whether the index serves its trie from a file mapping
// (OpenIndex's zero-copy path) rather than heap memory.
func (ix *Index) Mapped() bool { return ix.mapped != nil }

// Close releases the resources an index holds beyond heap memory: the
// file mapping of an index opened with OpenIndex, and the write-ahead log
// of an index attached to one (WithWAL or Recover) — the log is synced and
// its file handle closed. Close is idempotent, and a no-op for plain
// heap-backed indexes — so generic teardown can always Close. After Close
// the index must not be used: a mapped trie aliases the released pages,
// and mutations can no longer reach the log. Mapped indexes that are
// simply dropped (a reload swapping in a successor) need no explicit
// Close; the mapping is released when the collector proves no reader can
// touch it anymore.
func (ix *Index) Close() error {
	// A background compaction may still be walking the file-mapped arena
	// and rotating the log; serialize with it so neither resource is torn
	// away mid-use.
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	var err error
	if ix.wal != nil {
		err = ix.wal.Close()
	}
	if ix.mapped != nil {
		ix.cleanup.Stop()
		if merr := ix.mapped.close(); err == nil {
			err = merr
		}
	}
	return err
}

// keepMapped fences the end of a read path: it keeps ix — and through it
// the file mapping — reachable until the trie walk above it has retired.
// Without the fence the collector may prove ix dead the moment its epoch
// pointer is loaded, run the cleanup, and unmap pages a walk still reads.
// On heap-backed indexes it is free.
func (ix *Index) keepMapped() { runtime.KeepAlive(ix) }
