package act_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/actindex/act"
)

// ExampleNew builds an index with functional options and answers a point
// query — the v2 shape of the package's quick start.
func ExampleNew() {
	midtown := &act.Polygon{Outer: []act.LatLng{
		{Lat: 40.745, Lng: -74.000},
		{Lat: 40.745, Lng: -73.970},
		{Lat: 40.770, Lng: -73.970},
		{Lat: 40.770, Lng: -74.000},
	}}
	idx, err := act.New([]*act.Polygon{midtown},
		act.WithPrecision(4),         // ε: false positives are within 4 m
		act.WithGrid(act.PlanarGrid)) // the default, spelled out
	if err != nil {
		log.Fatal(err)
	}
	var res act.Result
	if idx.Lookup(act.LatLng{Lat: 40.7580, Lng: -73.9855}, &res) {
		fmt.Println("true hits:", res.True)
	}
	// Output: true hits: [0]
}

// ExampleSwappable replaces a served polygon set under (simulated) live
// traffic: readers Load per request, an operator Swaps in the replacement.
func ExampleSwappable() {
	build := func(outer []act.LatLng) *act.Index {
		idx, err := act.New([]*act.Polygon{{Outer: outer}}, act.WithPrecision(10))
		if err != nil {
			log.Fatal(err)
		}
		return idx
	}
	manhattan := build([]act.LatLng{
		{Lat: 40.70, Lng: -74.02}, {Lat: 40.70, Lng: -73.96},
		{Lat: 40.76, Lng: -73.96}, {Lat: 40.76, Lng: -74.02},
	})
	newark := build([]act.LatLng{
		{Lat: 40.70, Lng: -74.20}, {Lat: 40.70, Lng: -74.14},
		{Lat: 40.76, Lng: -74.14}, {Lat: 40.76, Lng: -74.20},
	})

	indexes := act.NewSwappable(manhattan)
	ll := act.LatLng{Lat: 40.73, Lng: -73.99} // in the Manhattan zone
	fmt.Printf("gen %d: matched=%v\n", indexes.Generation(), len(indexes.Load().Find(ll)) > 0)

	indexes.Swap(newark) // zero-downtime polygon-set update
	fmt.Printf("gen %d: matched=%v\n", indexes.Generation(), len(indexes.Load().Find(ll)) > 0)
	// Output:
	// gen 1: matched=true
	// gen 2: matched=false
}

// ExampleIndex_Insert mutates a live index: a zone is inserted (served from
// the delta layer immediately), removed again, and the delta folded into a
// fresh base trie by Compact — all without ever blocking a lookup.
func ExampleIndex_Insert() {
	manhattan := &act.Polygon{Outer: []act.LatLng{
		{Lat: 40.70, Lng: -74.02}, {Lat: 40.70, Lng: -73.96},
		{Lat: 40.76, Lng: -73.96}, {Lat: 40.76, Lng: -74.02},
	}}
	idx, err := act.New([]*act.Polygon{manhattan}, act.WithPrecision(10))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	newark := &act.Polygon{Outer: []act.LatLng{
		{Lat: 40.70, Lng: -74.20}, {Lat: 40.70, Lng: -74.14},
		{Lat: 40.76, Lng: -74.14}, {Lat: 40.76, Lng: -74.20},
	}}
	id, err := idx.Insert(ctx, newark) // live: no rebuild, readers unblocked
	if err != nil {
		log.Fatal(err)
	}
	inNewark := act.LatLng{Lat: 40.73, Lng: -74.17}
	fmt.Printf("id %d: matched=%v delta=%v\n", id, len(idx.Find(inNewark)) > 0, idx.IsDelta(id))

	if err := idx.Compact(ctx); err != nil { // fold the delta into the base
		log.Fatal(err)
	}
	fmt.Printf("compacted: matched=%v delta=%v\n", len(idx.Find(inNewark)) > 0, idx.IsDelta(id))

	if err := idx.Remove(ctx, id); err != nil { // tombstone the zone again
		log.Fatal(err)
	}
	fmt.Printf("removed: matched=%v live=%d\n", len(idx.Find(inNewark)) > 0, idx.NumPolygons())
	// Output:
	// id 1: matched=true delta=true
	// compacted: matched=true delta=false
	// removed: matched=false live=1
}

// ExampleRecover survives a crash: mutations are write-ahead logged as
// they are acknowledged, the process "crashes" (the index is simply
// dropped without Close), and Recover rebuilds the exact polygon set from
// the checkpoint snapshot plus the log tail.
func ExampleRecover() {
	dir, err := os.MkdirTemp("", "act-recover")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "zones.act")
	walPath := filepath.Join(dir, "zones.wal")

	manhattan := &act.Polygon{Outer: []act.LatLng{
		{Lat: 40.70, Lng: -74.02}, {Lat: 40.70, Lng: -73.96},
		{Lat: 40.76, Lng: -73.96}, {Lat: 40.76, Lng: -74.02},
	}}
	idx, err := act.New([]*act.Polygon{manhattan},
		act.WithPrecision(10),
		act.WithWAL(act.WALConfig{Path: walPath, SnapshotPath: snapPath}))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	newark := &act.Polygon{Outer: []act.LatLng{
		{Lat: 40.70, Lng: -74.20}, {Lat: 40.70, Lng: -74.14},
		{Lat: 40.76, Lng: -74.14}, {Lat: 40.76, Lng: -74.20},
	}}
	if _, err := idx.Insert(ctx, newark); err != nil { // fsynced before acknowledged
		log.Fatal(err)
	}
	if err := idx.Compact(ctx); err != nil { // checkpoint: snapshot + log rotation
		log.Fatal(err)
	}
	if err := idx.Remove(ctx, 0); err != nil { // lands in the log tail
		log.Fatal(err)
	}
	// Crash: the process dies here without Close. The snapshot holds both
	// zones; the remove of Manhattan exists only as a log record.

	rec, err := act.Recover(snapPath, walPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()
	inManhattan := act.LatLng{Lat: 40.73, Lng: -73.99}
	inNewark := act.LatLng{Lat: 40.73, Lng: -74.17}
	fmt.Printf("replayed %d record(s), live=%d\n", rec.WALStats().RecoveredRecords, rec.NumPolygons())
	fmt.Printf("manhattan=%v newark=%v\n", len(rec.Find(inManhattan)) > 0, len(rec.Find(inNewark)) > 0)
	// Output:
	// replayed 1 record(s), live=1
	// manhattan=false newark=true
}
