package act

// Tests for the v4 flat format: sparse id spaces (removals that left
// permanent holes) round-trip through WriteTo → ReadIndex and the
// zero-copy OpenIndex path, the geometry section's dense→sparse remap
// keeps exact refinement intact, dense indexes keep emitting v3
// byte-identically, and a tampered id column is rejected by both readers.

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc64"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/actindex/act/internal/data"
	"github.com/actindex/act/internal/geo"
)

// buildSparseIndex builds a mutable index and removes every third polygon,
// compacting the holes into the base so the id space is permanently sparse.
func buildSparseIndex(t *testing.T, opts Options) (*Index, *data.PolygonSet, []uint32) {
	t.Helper()
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "v4", NumRegions: 12, Lattice: 64, Seed: 401,
		BoundaryJitter: 0.5, HoleFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.PrecisionMeters = 20
	opts.DeltaThreshold = -1
	idx, err := BuildIndex(set.Polygons, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var removed []uint32
	for id := 0; id < len(set.Polygons); id += 3 {
		if err := idx.Remove(ctx, uint32(id)); err != nil {
			t.Fatal(err)
		}
		removed = append(removed, uint32(id))
	}
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	return idx, set, removed
}

// checkLookupParity compares approximate and exact lookups of two indexes
// over random points spanning the set.
func checkLookupParity(t *testing.T, tag string, a, b *Index, set *data.PolygonSet, exact bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(402))
	bd := set.Bound
	var r1, r2 Result
	for n := 0; n < 2000; n++ {
		ll := geo.LatLng{
			Lat: bd.MinLat + rng.Float64()*(bd.MaxLat-bd.MinLat),
			Lng: bd.MinLng + rng.Float64()*(bd.MaxLng-bd.MinLng),
		}
		a.Lookup(ll, &r1)
		b.Lookup(ll, &r2)
		if len(r1.True) != len(r2.True) || len(r1.Candidates) != len(r2.Candidates) {
			t.Fatalf("%s: lookup diverges at %v: %+v vs %+v", tag, ll, r1, r2)
		}
		for i := range r1.True {
			if r1.True[i] != r2.True[i] {
				t.Fatalf("%s: true ids diverge at %v", tag, ll)
			}
		}
		for i := range r1.Candidates {
			if r1.Candidates[i] != r2.Candidates[i] {
				t.Fatalf("%s: candidate ids diverge at %v", tag, ll)
			}
		}
		if exact {
			a.LookupExact(ll, &r1)
			b.LookupExact(ll, &r2)
			if len(r1.True) != len(r2.True) {
				t.Fatalf("%s: exact lookup diverges at %v", tag, ll)
			}
			for i := range r1.True {
				if r1.True[i] != r2.True[i] {
					t.Fatalf("%s: exact ids diverge at %v", tag, ll)
				}
			}
		}
	}
}

func TestV4SparseRoundTrip(t *testing.T) {
	for _, gk := range []GridKind{PlanarGrid, CubeFaceGrid} {
		idx, set, removed := buildSparseIndex(t, Options{Grid: gk})
		var buf bytes.Buffer
		n, err := idx.WriteTo(&buf)
		if err != nil {
			t.Fatalf("%v: sparse WriteTo: %v", gk, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%v: WriteTo reported %d bytes, wrote %d", gk, n, buf.Len())
		}
		blob := buf.Bytes()
		if v := binary.LittleEndian.Uint32(blob[4:]); v != indexVersionSparse {
			t.Fatalf("%v: sparse index serialized as version %d, want %d", gk, v, indexVersionSparse)
		}
		if got, want := binary.LittleEndian.Uint32(blob[20:]), uint32(len(set.Polygons)); got != want {
			t.Fatalf("%v: header idSpace %d, want %d", gk, got, want)
		}

		loaded, err := ReadIndex(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%v: reading v4: %v", gk, err)
		}
		if loaded.NumPolygons() != idx.NumPolygons() {
			t.Fatalf("%v: loaded %d polygons, want %d", gk, loaded.NumPolygons(), idx.NumPolygons())
		}
		if loaded.Mutable() {
			t.Fatalf("%v: deserialized index is mutable", gk)
		}
		checkLookupParity(t, gk.String()+"/read", idx, loaded, set, true)

		// Removed ids must stay dead across the round trip: the remapped
		// geometry store must not resurrect them as exact hits.
		var res Result
		for _, id := range removed {
			p := set.Polygons[id]
			c := p.Outer[0]
			loaded.LookupExact(geo.LatLng{Lat: c.Lat, Lng: c.Lng}, &res)
			for _, got := range res.True {
				if got == id {
					t.Fatalf("%v: removed id %d resurrected by v4 load", gk, id)
				}
			}
		}

		// serialize → load → serialize is a fixed point, byte for byte.
		var buf2 bytes.Buffer
		if _, err := loaded.WriteTo(&buf2); err != nil {
			t.Fatalf("%v: re-serializing v4: %v", gk, err)
		}
		if !bytes.Equal(blob, buf2.Bytes()) {
			t.Fatalf("%v: v4 round trip is not byte-identical (%d vs %d bytes)", gk, len(blob), buf2.Len())
		}

		// The zero-copy path serves the same answers.
		path := filepath.Join(t.TempDir(), "v4.act")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		mapped, err := OpenIndex(path)
		if err != nil {
			t.Fatalf("%v: OpenIndex on v4: %v", gk, err)
		}
		checkLookupParity(t, gk.String()+"/mmap", idx, mapped, set, true)
		if err := mapped.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestV4ApproximateOnly round-trips a sparse index without a geometry
// section.
func TestV4ApproximateOnly(t *testing.T) {
	idx, set, _ := buildSparseIndex(t, Options{SkipGeometryStore: true})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("sparse no-geom WriteTo: %v", err)
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading sparse no-geom: %v", err)
	}
	if loaded.HasGeometry() {
		t.Fatal("approximate-only file loaded with geometry")
	}
	checkLookupParity(t, "nogeom", idx, loaded, set, false)
}

// TestDenseStaysV3: an index without id-space holes keeps writing the v3
// format, so existing v3 consumers and the byte-identity contract with
// older files are unaffected.
func TestDenseStaysV3(t *testing.T) {
	idx, _ := buildTestIndex(t, PlanarGrid)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:]); v != indexVersion {
		t.Fatalf("dense index serialized as version %d, want %d", v, indexVersion)
	}

	// An insert-then-compact index is still dense and also stays v3.
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "v3m", NumRegions: 6, Lattice: 64, Seed: 403,
		BoundaryJitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	midx, err := BuildIndex(set.Polygons[:5], Options{PrecisionMeters: 20, DeltaThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := midx.Insert(ctx, set.Polygons[5]); err != nil {
		t.Fatal(err)
	}
	if err := midx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := midx.WriteTo(&mbuf); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(mbuf.Bytes()[4:]); v != indexVersion {
		t.Fatalf("insert-only compacted index serialized as version %d, want %d", v, indexVersion)
	}
}

// TestV4CorruptIDColumn: a flipped id-column byte fails the arena checksum
// in the copying reader, and a consistently re-checksummed but
// non-ascending column is rejected by the column validator (the check the
// mmap path relies on, since it skips the arena CRC by design).
func TestV4CorruptIDColumn(t *testing.T) {
	idx, _, _ := buildSparseIndex(t, Options{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	var hdr [flatHeaderSize]byte
	copy(hdr[:], blob[:flatHeaderSize])
	h, err := decodeFlatHeader(&hdr)
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip in the column: the copying reader's checksum catches it.
	flipped := bytes.Clone(blob)
	flipped[h.idsOff()] ^= 0xff
	if _, err := ReadIndex(bytes.NewReader(flipped)); err == nil {
		t.Fatal("ReadIndex accepted a corrupt id column")
	}

	// Forged file: swap two column entries and recompute both checksums so
	// only the ascending-order validator stands between the forgery and an
	// out-of-bounds geometry remap.
	forged := bytes.Clone(blob)
	le := binary.LittleEndian
	a := le.Uint32(forged[h.idsOff():])
	b := le.Uint32(forged[h.idsOff()+4:])
	le.PutUint32(forged[h.idsOff():], b)
	le.PutUint32(forged[h.idsOff()+4:], a)
	crc := crc64.Checksum(forged[h.arenaOff:h.tableEnd()], flatCRCTable)
	crc = crc64.Update(crc, flatCRCTable, forged[h.idsOff():h.idsEnd()])
	le.PutUint64(forged[248:], crc)
	le.PutUint64(forged[flatHeaderCRCBytes:], crc64.Checksum(forged[:flatHeaderCRCBytes], flatCRCTable))
	if _, err := ReadIndex(bytes.NewReader(forged)); err == nil {
		t.Fatal("ReadIndex accepted a non-ascending id column")
	}
	path := filepath.Join(t.TempDir(), "forged.act")
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndex(path); err == nil {
		t.Fatal("OpenIndex accepted a non-ascending id column")
	}
}
