package act

// Failover: fail-stop degradation and fenced follower promotion.
//
// A durable index degrades rather than lies. When its write-ahead log trips
// into the sticky fail-stop state (a failed append or fsync — see
// internal/wal), every further Insert and Remove reports ErrWALFailed
// without acknowledging anything: reads, joins, and the replication stream
// keep serving the last consistent state, but no mutation is accepted that
// the log cannot make durable.
//
// Promotion turns a replication follower into the next primary under an
// epoch fence. Each promotion bumps the replication epoch (stored in the
// WAL header and stamped on every replication exchange as X-Act-Epoch);
// the old primary fences itself the moment it observes the higher epoch —
// Fence is one-way — and from then on rejects mutations (ErrFenced) and
// replication requests (412). Together the two rules give the split-brain
// guarantee: at most one index lineage is ever mutable per epoch, and a
// resurrected stale primary can neither acknowledge writes nor feed
// followers history the new primary does not have.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"github.com/actindex/act/internal/fault"
	"github.com/actindex/act/internal/wal"
)

// Failover errors.
var (
	// ErrWALFailed is reported by Insert and Remove once the attached
	// write-ahead log has tripped into its fail-stop state: the mutation
	// was NOT acknowledged and the index now serves read-only. The cause
	// is in WALStats().Failed.
	ErrWALFailed = errors.New("act: write-ahead log has failed; index is read-only")
	// ErrFenced is reported by Insert and Remove on a primary that has
	// been fenced by a newer replication epoch: a follower was promoted,
	// and accepting writes here would fork history.
	ErrFenced = errors.New("act: index is fenced by a newer replication epoch")
)

// writableLocked reports why the index cannot accept a mutation (nil when
// it can): a fence always wins, then the log's sticky failure. Caller
// holds ix.mu.
func (ix *Index) writableLocked() error {
	if e := ix.fencedAt.Load(); e != 0 {
		return fmt.Errorf("%w (fenced at epoch %d)", ErrFenced, e)
	}
	if ix.wal != nil {
		if err := ix.wal.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrWALFailed, err)
		}
	}
	return nil
}

// Fence marks the index as superseded by the given replication epoch:
// every further mutation reports ErrFenced. Fencing is one-way and
// monotone — a higher epoch overwrites a lower one, nothing ever unfences —
// so a stale primary that learns of its successor stays read-only for the
// rest of its life. Epoch 0 never fences (it is the pre-failover epoch).
func (ix *Index) Fence(epoch uint64) {
	for {
		cur := ix.fencedAt.Load()
		if cur >= epoch {
			return
		}
		if ix.fencedAt.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Fenced returns the epoch the index was fenced at and whether it is
// fenced at all.
func (ix *Index) Fenced() (uint64, bool) {
	e := ix.fencedAt.Load()
	return e, e != 0
}

// ReplicationEpoch returns the index's replication fencing epoch: the
// epoch recorded in its write-ahead log's header, or 0 when no log is
// attached (followers learn the epoch from the wire, not from here).
func (ix *Index) ReplicationEpoch() uint64 {
	if ix.wal == nil {
		return 0
	}
	return ix.wal.Epoch()
}

// Promote converts a replication follower into a primary under the given
// (already-bumped) epoch: the overlay is compacted down, the resulting
// clean state written as a checkpoint snapshot to cfg.SnapshotPath, and a
// fresh write-ahead log opened at cfg.Path with the snapshot's sequence as
// its base and the new epoch in its header. On return the index accepts
// Insert and Remove, and a Primary wired around cfg.Path/cfg.SnapshotPath
// can serve the next generation of followers.
//
// The ordering is crash-safe: the snapshot is durably committed before the
// log is created or the follower flag drops, so a crash mid-promotion
// leaves a valid bootstrap image and a process that still thinks it is a
// follower — re-running the promotion (or re-bootstrapping from the new
// primary, if another candidate won) is always safe. ApplyReplicated is
// rejected for the duration, so no stale stream record can land after the
// state that the snapshot captures.
//
// The caller is responsible for the distributed half of the contract:
// verify the follower has drained the old primary's acknowledged history
// before promoting (internal/replica.Follower.Promote does), or removals
// acknowledged by the old primary may resurrect.
func (ix *Index) Promote(ctx context.Context, cfg WALConfig, epoch uint64) error {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()

	ix.mu.Lock()
	if !ix.follower {
		ix.mu.Unlock()
		return errors.New("act: promote: index is not a replication follower")
	}
	if ix.wal != nil {
		ix.mu.Unlock()
		return errors.New("act: promote: index already has a write-ahead log")
	}
	if cfg.Path == "" || cfg.SnapshotPath == "" {
		ix.mu.Unlock()
		return errors.New("act: promote: WAL config needs Path and SnapshotPath")
	}
	if epoch == 0 {
		ix.mu.Unlock()
		return errors.New("act: promote: epoch must be at least 1")
	}
	ix.promoting = true
	ix.mu.Unlock()
	defer func() {
		ix.mu.Lock()
		ix.promoting = false
		ix.mu.Unlock()
	}()

	// Fold the overlay into a clean base: the snapshot writer serializes
	// one epoch, not epoch + delta. No-op when the follower is already
	// clean; nothing new can land while promoting is set.
	if err := ix.compactLocked(ctx); err != nil {
		return fmt.Errorf("act: promote: compacting overlay: %w", err)
	}

	ix.mu.Lock()
	ep := ix.live.Load()
	if ep.ov != nil && ep.ov.Pending() > 0 {
		ix.mu.Unlock()
		return errors.New("act: promote: overlay still dirty after compaction")
	}
	snapSeq := ix.seq
	ids := aliveIDs(ix.alive)
	idSpace := len(ix.alive)
	ix.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	var idCol []uint32
	if len(ids) != idSpace {
		idCol = ids
	}
	snapTmp, err := stageSnapshot(cfg.SnapshotPath, ep, ix.kind, ix.precision, idCol, int64(idSpace))
	if err != nil {
		return fmt.Errorf("act: promote: staging snapshot: %w", err)
	}
	defer os.Remove(snapTmp) // no-op once renamed into place

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := commitSnapshot(snapTmp, cfg.SnapshotPath); err != nil {
		return fmt.Errorf("act: promote: publishing snapshot: %w", err)
	}
	// The snapshot is durable; from here a crash leaves a valid bootstrap
	// image. Clear any stale log at the target path (a leftover from a
	// previous life as primary) so the fresh log starts at the snapshot.
	fsys := cfg.FS
	if fsys == nil {
		fsys = fault.OS{}
	}
	if err := fsys.Remove(cfg.Path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("act: promote: clearing stale log: %w", err)
	}
	pol, err := cfg.Policy.walPolicy()
	if err != nil {
		return err
	}
	log, rep, err := wal.Open(cfg.Path, wal.Options{
		Policy: pol, Interval: cfg.Interval, FS: cfg.FS,
		BaseSeq: snapSeq, Epoch: epoch,
	})
	if err != nil {
		return fmt.Errorf("act: promote: opening log: %w", err)
	}
	if len(rep.Records) > 0 {
		log.Close()
		return fmt.Errorf("act: promote: fresh log at %s has %d residual records", cfg.Path, len(rep.Records))
	}
	ix.wal = log
	ix.walRecovered = 0
	ix.snapshotPath = cfg.SnapshotPath
	ix.follower = false
	return nil
}
