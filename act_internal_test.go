package act

import (
	"math"
	"math/rand"
	"testing"

	"github.com/actindex/act/internal/data"
	"github.com/actindex/act/internal/geo"
)

// distMeters approximates the distance in meters from a point to the
// nearest boundary of the polygon using a local equirectangular frame —
// accurate well below 1% at the sub-100 m distances the precision bound
// constrains.
func distMeters(ll geo.LatLng, p *geo.Polygon) float64 {
	cosLat := math.Cos(ll.Lat * math.Pi / 180)
	best := math.Inf(1)
	measure := func(ring []geo.LatLng) {
		n := len(ring)
		for i := 0; i < n; i++ {
			a, b := ring[i], ring[(i+1)%n]
			d := distPointSegMeters(ll, a, b, cosLat)
			if d < best {
				best = d
			}
		}
	}
	measure(p.Outer)
	for _, h := range p.Holes {
		measure(h)
	}
	return best
}

func distPointSegMeters(p, a, b geo.LatLng, cosLat float64) float64 {
	px := (p.Lng) * cosLat
	py := p.Lat
	ax, ay := a.Lng*cosLat, a.Lat
	bx, by := b.Lng*cosLat, b.Lat
	dx, dy := bx-ax, by-ay
	den := dx*dx + dy*dy
	t := 0.0
	if den > 0 {
		t = ((px-ax)*dx + (py-ay)*dy) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	ex, ey := ax+t*dx-px, ay+t*dy-py
	return math.Hypot(ex, ey) * geo.MetersPerDegree
}

// TestPrecisionGuarantee is the end-to-end property of the paper's title:
// with precision ε, (a) every point inside a polygon is reported (no false
// negatives), (b) every reported pair not truly inside is within ε meters
// of the polygon, and (c) true-hit results are truly inside.
func TestPrecisionGuarantee(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "precision", NumRegions: 40, Lattice: 128, Seed: 21,
		BoundaryJitter: 0.7, WaterFraction: 0.15, HoleFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, gk := range []GridKind{PlanarGrid, CubeFaceGrid} {
		for _, eps := range []float64{60, 15, 4} {
			idx, err := BuildIndex(set.Polygons, Options{PrecisionMeters: eps, Grid: gk})
			if err != nil {
				t.Fatalf("%v/%v: %v", gk, eps, err)
			}
			if got := idx.Stats().AchievedPrecisionMeters; got > eps {
				t.Errorf("%v/%v: achieved precision %.3f > ε", gk, eps, got)
			}
			// Adversarial points concentrate near boundaries, where the
			// guarantee is actually exercised.
			pts, err := data.GeneratePoints(data.PointConfig{
				N: 6000, Seed: 22, Distribution: data.Adversarial,
				Polygons: set, JitterMeters: eps * 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			var res Result
			falsePositives := 0
			for _, ll := range pts {
				// Ground truth via the index's own exact geometry (the
				// grid projection defines containment semantics).
				truthSet := map[uint32]bool{}
				for id := range set.Polygons {
					if idx.Contains(ll, uint32(id)) {
						truthSet[uint32(id)] = true
					}
				}
				idx.Lookup(ll, &res)
				got := map[uint32]bool{}
				for _, id := range res.True {
					got[id] = true
					// (c) true hits are truly inside.
					if !truthSet[id] {
						t.Fatalf("%v/%v: true hit %d not inside at %v", gk, eps, id, ll)
					}
				}
				for _, id := range res.Candidates {
					got[id] = true
				}
				// (a) no false negatives.
				for id := range truthSet {
					if !got[id] {
						t.Fatalf("%v/%v: missed polygon %d containing %v", gk, eps, id, ll)
					}
				}
				// (b) false positives within ε.
				for _, id := range res.Candidates {
					if truthSet[id] {
						continue
					}
					falsePositives++
					if d := distMeters(ll, set.Polygons[id]); d > eps*1.05 {
						t.Fatalf("%v/%v: false positive %d at %.2f m > ε=%v (point %v)",
							gk, eps, id, d, eps, ll)
					}
				}
			}
			if falsePositives == 0 {
				t.Errorf("%v/%v: adversarial points produced no false positives; test not exercising the bound", gk, eps)
			}
		}
	}
}

func TestLookupExactMatchesGroundTruth(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "exact", NumRegions: 25, Lattice: 96, Seed: 31,
		BoundaryJitter: 0.5, HoleFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	b := set.Bound
	var res Result
	for n := 0; n < 8000; n++ {
		ll := geo.LatLng{
			Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
			Lng: b.MinLng + rng.Float64()*(b.MaxLng-b.MinLng),
		}
		idx.LookupExact(ll, &res)
		if len(res.Candidates) != 0 {
			t.Fatal("LookupExact left candidates")
		}
		got := map[uint32]bool{}
		for _, id := range res.True {
			got[id] = true
		}
		for id := range set.Polygons {
			want := idx.Contains(ll, uint32(id))
			if got[uint32(id)] != want {
				t.Fatalf("point %v polygon %d: exact=%v truth=%v", ll, id, got[uint32(id)], want)
			}
		}
	}
}

func TestCubeFaceAndPlanarAgree(t *testing.T) {
	// The two grids implement the same join semantics up to boundary-sliver
	// differences; exact lookups must agree except within ~1e-7 degrees of
	// an edge. Compare exact joins and allow no disagreement on points
	// far from boundaries.
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "grids", NumRegions: 15, Lattice: 64, Seed: 41, BoundaryJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 15, Grid: PlanarGrid})
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 15, Grid: CubeFaceGrid})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	b := set.Bound
	var rp, rc Result
	disagree := 0
	for n := 0; n < 4000; n++ {
		ll := geo.LatLng{
			Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
			Lng: b.MinLng + rng.Float64()*(b.MaxLng-b.MinLng),
		}
		p.LookupExact(ll, &rp)
		c.LookupExact(ll, &rc)
		if len(rp.True) != len(rc.True) {
			disagree++
			continue
		}
		mp := map[uint32]bool{}
		for _, id := range rp.True {
			mp[id] = true
		}
		for _, id := range rc.True {
			if !mp[id] {
				disagree++
				break
			}
		}
	}
	// Projection differences only matter within float rounding of an
	// edge; on 4000 random points expect none.
	if disagree > 4 {
		t.Errorf("grids disagree on %d/4000 points", disagree)
	}
}

func TestBuildStatsShape(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "stats", NumRegions: 20, Lattice: 64, Seed: 51, BoundaryJitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prevCells int
	for _, eps := range []float64{120, 30, 8} {
		idx, err := BuildIndex(set.Polygons, Options{PrecisionMeters: eps})
		if err != nil {
			t.Fatal(err)
		}
		st := idx.Stats()
		if st.NumPolygons != len(set.Polygons) {
			t.Errorf("NumPolygons = %d", st.NumPolygons)
		}
		if st.IndexedCells <= prevCells {
			t.Errorf("ε=%v: indexed cells %d not more than coarser %d", eps, st.IndexedCells, prevCells)
		}
		prevCells = st.IndexedCells
		if st.TrieBytes <= 0 || st.TrieNodes <= 0 {
			t.Errorf("ε=%v: empty trie stats %+v", eps, st)
		}
		if st.TotalBytes() != st.TrieBytes+st.TableBytes {
			t.Error("TotalBytes mismatch")
		}
		if st.AchievedPrecisionMeters > eps || st.AchievedPrecisionMeters <= 0 {
			t.Errorf("ε=%v: achieved %.3f", eps, st.AchievedPrecisionMeters)
		}
	}
}

func TestBuildIndexValidation(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "v", NumRegions: 5, Lattice: 32, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndex(nil, Options{PrecisionMeters: 10}); err == nil {
		t.Error("no polygons should error")
	}
	if _, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 0}); err == nil {
		t.Error("zero precision should error")
	}
	if _, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 10, Fanout: 7}); err == nil {
		t.Error("bad fanout should error")
	}
	if _, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 10, Grid: GridKind(9)}); err == nil {
		t.Error("bad grid should error")
	}
	bad := &Polygon{Outer: []geo.LatLng{{Lat: 0, Lng: 0}, {Lat: 1, Lng: 1}}}
	if _, err := BuildIndex([]*Polygon{bad}, Options{PrecisionMeters: 10}); err == nil {
		t.Error("invalid polygon should error")
	}
}

func TestMemoryBudgetMode(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "budget", NumRegions: 10, Lattice: 64, Seed: 71, BoundaryJitter: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 4})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 4, MaxCellsPerPolygon: 200})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats().IndexedCells >= full.Stats().IndexedCells {
		t.Error("budgeted index should be smaller")
	}
	if tight.Stats().AchievedPrecisionMeters <= 4 {
		t.Error("budgeted index should report degraded precision")
	}
	// Exact lookups remain correct under the budget.
	rng := rand.New(rand.NewSource(72))
	b := set.Bound
	var rf, rt Result
	for n := 0; n < 2000; n++ {
		ll := geo.LatLng{
			Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
			Lng: b.MinLng + rng.Float64()*(b.MaxLng-b.MinLng),
		}
		full.LookupExact(ll, &rf)
		tight.LookupExact(ll, &rt)
		if len(rf.True) != len(rt.True) {
			t.Fatalf("budgeted exact lookup diverges at %v: %v vs %v", ll, rf.True, rt.True)
		}
	}
}

func TestFindAndContains(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "find", NumRegions: 8, Lattice: 48, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 20})
	if err != nil {
		t.Fatal(err)
	}
	// The centroid-ish point of each polygon's bound that is inside it
	// must be found.
	found := 0
	for id, p := range set.Polygons {
		c := p.Bound().Center()
		if !idx.Contains(c, uint32(id)) {
			continue // center may fall outside an irregular polygon
		}
		found++
		ids := idx.Find(c)
		ok := false
		for _, got := range ids {
			if got == uint32(id) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("Find(%v) = %v missing polygon %d", c, ids, id)
		}
	}
	if found == 0 {
		t.Error("no polygon contained its bound center; degenerate dataset")
	}
	if idx.Contains(geo.LatLng{Lat: 40.7, Lng: -74}, 9999) {
		t.Error("out-of-range polygon id should be false")
	}
	if idx.NumPolygons() != len(set.Polygons) {
		t.Error("NumPolygons mismatch")
	}
	if idx.GridName() != "planar" {
		t.Errorf("GridName = %q", idx.GridName())
	}
	if idx.PrecisionMeters() != 20 {
		t.Errorf("PrecisionMeters = %v", idx.PrecisionMeters())
	}
}

func TestCellLevelForPrecision(t *testing.T) {
	set, _ := data.GeneratePolygons(data.PolygonConfig{
		Name: "lvl", NumRegions: 4, Lattice: 32, Seed: 91,
	})
	idx, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 50})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, m := range []float64{1000, 100, 10, 1} {
		lvl := idx.CellLevelForPrecision(m, 40.7)
		if lvl < prev {
			t.Errorf("level for %.0f m = %d, shallower than coarser bound", m, lvl)
		}
		prev = lvl
	}
	// The paper reports level 24 bounding the error below 1 m on S2; the
	// planar grid packs the whole world into one face (vs six), so its
	// cells at a given level are larger and 1 m needs level 26.
	if lvl := idx.CellLevelForPrecision(1, 40.7); lvl != 26 {
		t.Errorf("planar 1 m precision needs level %d; expected 26", lvl)
	}
	cf, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 50, Grid: CubeFaceGrid})
	if err != nil {
		t.Fatal(err)
	}
	if lvl := cf.CellLevelForPrecision(1, 40.7); lvl > 25 {
		t.Errorf("cube-face 1 m precision needs level %d; expected ≈24", lvl)
	}
}

func TestJoinModes(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "joinmodes", NumRegions: 12, Lattice: 64, Seed: 95, BoundaryJitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 15})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := data.GeneratePoints(data.PointConfig{N: 30000, Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	ca, sa := idx.Join(pts, Approximate, 1)
	ce, se := idx.Join(pts, Exact, 2)
	if len(ca) != idx.NumPolygons() || len(ce) != idx.NumPolygons() {
		t.Fatal("count vector sized wrong")
	}
	for i := range ca {
		if ca[i] < ce[i] {
			t.Fatalf("polygon %d: approx %d < exact %d", i, ca[i], ce[i])
		}
	}
	if sa.Pairs() < se.Pairs() {
		t.Error("approximate pairs fewer than exact")
	}
	// Ground truth for a sample.
	var res Result
	for n := 0; n < 200; n++ {
		ll := pts[n*113%len(pts)]
		idx.LookupExact(ll, &res)
	}
}

// TestJoinStreamAndPairs pins the streaming engine API to per-point Lookup
// ground truth: Pairs must enumerate exactly the (point, polygon) matches
// Lookup reports, JoinStream must deliver the same multiset serialized, and
// Join must equal the aggregation of either.
func TestJoinStreamAndPairs(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "stream", NumRegions: 12, Lattice: 64, Seed: 97, BoundaryJitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(set.Polygons, Options{PrecisionMeters: 15})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := data.GeneratePoints(data.PointConfig{N: 20000, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []JoinMode{Approximate, Exact} {
		pairs, pst := idx.Pairs(pts, mode, 4)
		if int64(len(pairs)) != pst.Pairs() {
			t.Fatalf("%v: %d pairs, stats say %d", mode, len(pairs), pst.Pairs())
		}
		// Per-point ground truth through the single-point API.
		var res Result
		want := map[Pair]bool{}
		for i, ll := range pts {
			var hit bool
			if mode == Exact {
				hit = idx.LookupExact(ll, &res)
			} else {
				hit = idx.Lookup(ll, &res)
			}
			if !hit {
				continue
			}
			for _, id := range res.True {
				want[Pair{Point: i, Polygon: id, Class: TrueHit}] = true
			}
			for _, id := range res.Candidates {
				want[Pair{Point: i, Polygon: id, Class: Candidate}] = true
			}
		}
		if mode == Approximate {
			if len(want) != len(pairs) {
				t.Fatalf("%v: %d pairs, ground truth %d", mode, len(pairs), len(want))
			}
			for _, p := range pairs {
				if !want[p] {
					t.Fatalf("%v: unexpected pair %+v", mode, p)
				}
			}
		} else {
			// LookupExact folds confirmed candidates into True; compare on
			// (point, polygon) only.
			got := map[[2]uint64]bool{}
			for _, p := range pairs {
				got[[2]uint64{uint64(p.Point), uint64(p.Polygon)}] = true
			}
			if len(got) != len(want) {
				t.Fatalf("%v: %d distinct pairs, ground truth %d", mode, len(got), len(want))
			}
			for p := range want {
				if !got[[2]uint64{uint64(p.Point), uint64(p.Polygon)}] {
					t.Fatalf("%v: missing pair %+v", mode, p)
				}
			}
		}
		// JoinStream delivers the same multiset.
		var streamed []Pair
		sst := idx.JoinStream(pts, mode, 4, func(p Pair) { streamed = append(streamed, p) })
		if int64(len(streamed)) != sst.Pairs() || len(streamed) != len(pairs) {
			t.Fatalf("%v: streamed %d pairs, want %d", mode, len(streamed), len(pairs))
		}
		// Join equals the aggregation of the pair list.
		counts, _ := idx.Join(pts, mode, 2)
		agg := make([]uint64, idx.NumPolygons())
		for _, p := range pairs {
			agg[p.Polygon]++
		}
		for i := range counts {
			if counts[i] != agg[i] {
				t.Fatalf("%v polygon %d: Join %d, Pairs aggregation %d", mode, i, counts[i], agg[i])
			}
		}
	}
}

// TestAdaptiveIndex exercises the query-driven adaptive build: with a tight
// budget, sampled query regions see fewer approximate-vs-exact disagreements
// than unqueried regions, and correctness is unaffected.
func TestAdaptiveIndex(t *testing.T) {
	set, err := data.GeneratePolygons(data.PolygonConfig{
		Name: "adaptive", NumRegions: 20, Lattice: 96, Seed: 101, BoundaryJitter: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hot queries cluster near the boundaries of the first few polygons.
	hot, err := data.GeneratePoints(data.PointConfig{
		N: 4000, Seed: 102, Distribution: data.Adversarial,
		Polygons:     &data.PolygonSet{Polygons: set.Polygons[:3], Bound: set.Bound},
		JitterMeters: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 400
	adaptive, err := BuildIndex(set.Polygons, Options{
		PrecisionMeters: 4, MaxCellsPerPolygon: budget, QuerySamplePoints: hot,
	})
	if err != nil {
		t.Fatal(err)
	}
	oblivious, err := BuildIndex(set.Polygons, Options{
		PrecisionMeters: 4, MaxCellsPerPolygon: budget,
	})
	if err != nil {
		t.Fatal(err)
	}

	// On the hot workload the adaptive index should misclassify fewer
	// candidates (its hot cells are finer).
	countFalse := func(ix *Index) int {
		var res Result
		fp := 0
		for _, ll := range hot {
			if !ix.Lookup(ll, &res) {
				continue
			}
			for _, id := range res.Candidates {
				if !ix.Contains(ll, id) {
					fp++
				}
			}
		}
		return fp
	}
	fa, fo := countFalse(adaptive), countFalse(oblivious)
	if fa >= fo {
		t.Errorf("adaptive index produced %d false positives on the hot workload, oblivious %d", fa, fo)
	}

	// Exact lookups agree everywhere.
	rng := rand.New(rand.NewSource(103))
	b := set.Bound
	var ra, ro Result
	for n := 0; n < 1500; n++ {
		ll := geo.LatLng{
			Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
			Lng: b.MinLng + rng.Float64()*(b.MaxLng-b.MinLng),
		}
		adaptive.LookupExact(ll, &ra)
		oblivious.LookupExact(ll, &ro)
		if len(ra.True) != len(ro.True) {
			t.Fatalf("exact results diverge at %v: %v vs %v", ll, ra.True, ro.True)
		}
	}
}
