// Command actquery builds an ACT index from a GeoJSON polygon file and
// answers point queries from stdin, one "lat lng" pair per line:
//
//	actgen -dataset neighborhoods -o n.geojson
//	echo "40.7580 -73.9855" | actquery -polygons n.geojson -precision 4
//
// Output per point: the matching polygon ids split by hit class (true hits
// are certainly inside, candidates are within the precision bound ε — the
// zero-allocation AppendRefs fast path), or the candidates resolved against
// real geometry with -exact.
//
// With -mutate f.geojson, the polygons of f are inserted into the live
// index after the build (exercising the delta layer instead of a combined
// rebuild); with -verbose, each matched id is tagged @delta when it is
// currently served from the delta layer rather than the base trie.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/actindex/act"
	"github.com/actindex/act/internal/geojson"
)

func main() {
	polyFile := flag.String("polygons", "", "GeoJSON file with the polygon set (required)")
	precision := flag.Float64("precision", 4, "precision bound ε in meters")
	exact := flag.Bool("exact", false, "refine candidates with exact geometry")
	gridFlag := flag.String("grid", "planar", "hierarchical grid: planar | cubeface")
	mutateFile := flag.String("mutate", "", "GeoJSON file inserted into the live index after the build (delta layer)")
	verbose := flag.Bool("verbose", false, "tag each matched id with @delta when served from the delta layer")
	flag.Parse()

	if *polyFile == "" {
		fmt.Fprintln(os.Stderr, "actquery: -polygons is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*polyFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actquery: %v\n", err)
		os.Exit(1)
	}
	polys, err := geojson.ReadPolygons(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "actquery: %v\n", err)
		os.Exit(1)
	}

	var gk act.GridKind
	switch *gridFlag {
	case "planar":
		gk = act.PlanarGrid
	case "cubeface":
		gk = act.CubeFaceGrid
	default:
		fmt.Fprintf(os.Stderr, "actquery: unknown grid %q\n", *gridFlag)
		os.Exit(2)
	}

	idx, err := act.New(polys, act.WithPrecision(*precision), act.WithGrid(gk))
	if err != nil {
		fmt.Fprintf(os.Stderr, "actquery: build: %v\n", err)
		os.Exit(1)
	}
	if *mutateFile != "" {
		mf, err := os.Open(*mutateFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actquery: %v\n", err)
			os.Exit(1)
		}
		extra, err := geojson.ReadPolygons(mf)
		mf.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "actquery: %v\n", err)
			os.Exit(1)
		}
		for i, p := range extra {
			if _, err := idx.Insert(context.Background(), p); err != nil {
				fmt.Fprintf(os.Stderr, "actquery: insert %d: %v\n", i, err)
				os.Exit(1)
			}
		}
		ds := idx.DeltaStats()
		fmt.Fprintf(os.Stderr, "actquery: inserted %d polygons into the delta layer (pending %d, threshold %d)\n",
			len(extra), ds.Pending, ds.Threshold)
	}
	st := idx.Stats()
	fmt.Fprintf(os.Stderr,
		"actquery: %d live polygons (%d in base), %d cells, %.1f MB, ε=%.1fm (achieved %.2fm); reading \"lat lng\" lines\n",
		idx.NumPolygons(), st.NumPolygons, st.IndexedCells, float64(st.TotalBytes())/1e6,
		*precision, st.AchievedPrecisionMeters)

	in := bufio.NewScanner(os.Stdin)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	// fmtIDs renders a matched id list; with -verbose, ids currently
	// served from the delta layer are tagged @delta.
	fmtIDs := func(ids []uint32) string {
		var sb strings.Builder
		sb.WriteByte('[')
		for i, id := range ids {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", id)
			if *verbose && idx.IsDelta(id) {
				sb.WriteString("@delta")
			}
		}
		sb.WriteByte(']')
		return sb.String()
	}
	var res act.Result
	// Reused across lines: AppendRefs never allocates, and the true/
	// candidate split is carried per reference so the two classes are never
	// conflated in the output.
	var refs []act.Match
	var trues, cands []uint32
	lineNo := 0
	for in.Scan() {
		lineNo++
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			fmt.Fprintf(os.Stderr, "actquery: line %d: need \"lat lng\"\n", lineNo)
			continue
		}
		lat, err1 := strconv.ParseFloat(fields[0], 64)
		lng, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "actquery: line %d: bad coordinates\n", lineNo)
			continue
		}
		ll := act.LatLng{Lat: lat, Lng: lng}
		if *exact {
			if !idx.LookupExact(ll, &res) {
				fmt.Fprintf(out, "%.6f %.6f -> no match\n", lat, lng)
				continue
			}
			fmt.Fprintf(out, "%.6f %.6f -> true=%s candidates=%s\n", lat, lng, fmtIDs(res.True), fmtIDs(res.Candidates))
			continue
		}
		refs = idx.AppendRefs(ll, refs[:0])
		if len(refs) == 0 {
			fmt.Fprintf(out, "%.6f %.6f -> no match\n", lat, lng)
			continue
		}
		trues, cands = trues[:0], cands[:0]
		for _, m := range refs {
			if m.Exact {
				trues = append(trues, m.ID)
			} else {
				cands = append(cands, m.ID)
			}
		}
		fmt.Fprintf(out, "%.6f %.6f -> true=%s candidates=%s\n", lat, lng, fmtIDs(trues), fmtIDs(cands))
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "actquery: stdin: %v\n", err)
		os.Exit(1)
	}
}
