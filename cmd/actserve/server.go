package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"github.com/actindex/act"
)

// Server is the HTTP API over an immutable index. It is exported (within
// this main package) for httptest-based testing.
type Server struct {
	idx *act.Index
	mux *http.ServeMux
	// results are pooled: lookups are allocation-free, so the handler's
	// only steady-state allocations are the JSON encoder's.
	pool sync.Pool
}

// NewServer wires the routes.
func NewServer(idx *act.Index) *Server {
	s := &Server{
		idx: idx,
		mux: http.NewServeMux(),
		pool: sync.Pool{
			New: func() any { return &act.Result{} },
		},
	}
	s.mux.HandleFunc("GET /lookup", s.handleLookup)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// lookupResponse is the JSON shape of a lookup.
type lookupResponse struct {
	Lat        float64  `json:"lat"`
	Lng        float64  `json:"lng"`
	Matched    bool     `json:"matched"`
	True       []uint32 `json:"true,omitempty"`
	Candidates []uint32 `json:"candidates,omitempty"`
	// Epsilon echoes the precision bound candidates are subject to.
	Epsilon float64 `json:"epsilonMeters"`
	Exact   bool    `json:"exact"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
	lng, err2 := strconv.ParseFloat(q.Get("lng"), 64)
	if err1 != nil || err2 != nil {
		http.Error(w, `need numeric "lat" and "lng" query parameters`, http.StatusBadRequest)
		return
	}
	ll := act.LatLng{Lat: lat, Lng: lng}
	if !ll.IsValid() {
		http.Error(w, "coordinates out of range", http.StatusBadRequest)
		return
	}
	exact := q.Get("exact") == "1" || q.Get("exact") == "true"

	res := s.pool.Get().(*act.Result)
	defer s.pool.Put(res)
	var matched bool
	if exact {
		matched = s.idx.LookupExact(ll, res)
	} else {
		matched = s.idx.Lookup(ll, res)
	}
	resp := lookupResponse{
		Lat: lat, Lng: lng, Matched: matched,
		True: res.True, Candidates: res.Candidates,
		Epsilon: s.idx.PrecisionMeters(), Exact: exact,
	}
	writeJSON(w, resp)
}

// statsResponse is the JSON shape of /stats.
type statsResponse struct {
	NumPolygons             int     `json:"numPolygons"`
	IndexedCells            int     `json:"indexedCells"`
	TrieBytes               int64   `json:"trieBytes"`
	TableBytes              int64   `json:"tableBytes"`
	PrecisionMeters         float64 `json:"precisionMeters"`
	AchievedPrecisionMeters float64 `json:"achievedPrecisionMeters"`
	Grid                    string  `json:"grid"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.idx.Stats()
	writeJSON(w, statsResponse{
		NumPolygons:             st.NumPolygons,
		IndexedCells:            st.IndexedCells,
		TrieBytes:               st.TrieBytes,
		TableBytes:              st.TableBytes,
		PrecisionMeters:         s.idx.PrecisionMeters(),
		AchievedPrecisionMeters: st.AchievedPrecisionMeters,
		Grid:                    s.idx.GridName(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
