package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"

	"github.com/actindex/act"
)

// Server is the HTTP API over an immutable index. It is exported (within
// this main package) for httptest-based testing.
type Server struct {
	idx *act.Index
	mux *http.ServeMux
	// results are pooled: lookups are allocation-free, so the handler's
	// only steady-state allocations are the JSON encoder's.
	pool sync.Pool
}

// NewServer wires the routes.
func NewServer(idx *act.Index) *Server {
	s := &Server{
		idx: idx,
		mux: http.NewServeMux(),
		pool: sync.Pool{
			New: func() any { return &act.Result{} },
		},
	}
	s.mux.HandleFunc("GET /lookup", s.handleLookup)
	s.mux.HandleFunc("POST /join", s.handleJoin)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// lookupResponse is the JSON shape of a lookup.
type lookupResponse struct {
	Lat        float64  `json:"lat"`
	Lng        float64  `json:"lng"`
	Matched    bool     `json:"matched"`
	True       []uint32 `json:"true,omitempty"`
	Candidates []uint32 `json:"candidates,omitempty"`
	// Epsilon echoes the precision bound candidates are subject to.
	Epsilon float64 `json:"epsilonMeters"`
	Exact   bool    `json:"exact"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
	lng, err2 := strconv.ParseFloat(q.Get("lng"), 64)
	if err1 != nil || err2 != nil {
		http.Error(w, `need numeric "lat" and "lng" query parameters`, http.StatusBadRequest)
		return
	}
	ll := act.LatLng{Lat: lat, Lng: lng}
	if !ll.IsValid() {
		http.Error(w, "coordinates out of range", http.StatusBadRequest)
		return
	}
	exact := q.Get("exact") == "1" || q.Get("exact") == "true"

	res := s.pool.Get().(*act.Result)
	defer s.pool.Put(res)
	var matched bool
	if exact {
		matched = s.idx.LookupExact(ll, res)
	} else {
		matched = s.idx.Lookup(ll, res)
	}
	resp := lookupResponse{
		Lat: lat, Lng: lng, Matched: matched,
		True: res.True, Candidates: res.Candidates,
		Epsilon: s.idx.PrecisionMeters(), Exact: exact,
	}
	writeJSON(w, resp)
}

// joinRequest is the JSON body of POST /join: a point batch to join
// against the indexed polygon set.
type joinRequest struct {
	Points []struct {
		Lat float64 `json:"lat"`
		Lng float64 `json:"lng"`
	} `json:"points"`
	// Exact refines candidates with exact geometry before emitting.
	Exact bool `json:"exact"`
	// Threads bounds the join workers. Values outside [1, GOMAXPROCS] are
	// clamped so a single request cannot monopolize (or over-subscribe)
	// the process; the default is 1.
	Threads int `json:"threads"`
}

// maxJoinPoints bounds one request's batch so a single POST cannot pin the
// process; stream larger joins as several requests.
const maxJoinPoints = 1 << 22

// maxJoinBody bounds the request body read off the wire: comfortably above
// maxJoinPoints of JSON-encoded coordinates, far below anything that could
// exhaust memory before the point-count check runs.
const maxJoinBody = 256 << 20

// joinPair is one NDJSON line of the /join response stream.
type joinPair struct {
	Point   int    `json:"point"`
	Polygon uint32 `json:"polygon"`
	Class   string `json:"class"`
}

// joinTrailer is the final NDJSON line: aggregate statistics.
type joinTrailer struct {
	Stats struct {
		Points         int     `json:"points"`
		Pairs          int64   `json:"pairs"`
		TrueHits       int64   `json:"trueHits"`
		CandidateHits  int64   `json:"candidateHits"`
		Misses         int64   `json:"misses"`
		ElapsedSeconds float64 `json:"elapsedSeconds"`
		ThroughputMPts float64 `json:"throughputMPts"`
	} `json:"stats"`
}

// handleJoin streams the join of a posted point batch as NDJSON: one
// {"point","polygon","class"} object per pair, then a {"stats"} trailer.
// Pairs are emitted as the engine produces them, so the response starts
// before the join finishes.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJoinBody)).Decode(&req); err != nil {
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Points) == 0 {
		http.Error(w, `need a non-empty "points" array`, http.StatusBadRequest)
		return
	}
	if len(req.Points) > maxJoinPoints {
		http.Error(w, fmt.Sprintf("batch exceeds %d points", maxJoinPoints), http.StatusBadRequest)
		return
	}
	pts := make([]act.LatLng, len(req.Points))
	for i, p := range req.Points {
		ll := act.LatLng{Lat: p.Lat, Lng: p.Lng}
		if !ll.IsValid() {
			http.Error(w, fmt.Sprintf("point %d out of range", i), http.StatusBadRequest)
			return
		}
		pts[i] = ll
	}
	mode := act.Approximate
	if req.Exact {
		mode = act.Exact
	}
	threads := min(max(req.Threads, 1), runtime.GOMAXPROCS(0))

	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	// JoinStream serializes fn, so the encoder needs no extra locking.
	// Once the client is gone (write error or cancelled request), stop
	// encoding; the join itself still runs to completion, but without the
	// per-pair serialization work.
	ctx := r.Context()
	var writeErr error
	stats := s.idx.JoinStream(pts, mode, threads, func(p act.Pair) {
		if writeErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			writeErr = err
			return
		}
		writeErr = enc.Encode(joinPair{Point: p.Point, Polygon: p.Polygon, Class: p.Class.String()})
	})
	if writeErr != nil {
		return
	}
	var trailer joinTrailer
	trailer.Stats.Points = stats.Points
	trailer.Stats.Pairs = stats.Pairs()
	trailer.Stats.TrueHits = stats.TrueHits
	trailer.Stats.CandidateHits = stats.CandidateHits
	trailer.Stats.Misses = stats.Misses
	trailer.Stats.ElapsedSeconds = stats.Elapsed.Seconds()
	trailer.Stats.ThroughputMPts = stats.ThroughputMPts
	_ = enc.Encode(trailer)
	_ = bw.Flush()
}

// statsResponse is the JSON shape of /stats.
type statsResponse struct {
	NumPolygons             int     `json:"numPolygons"`
	IndexedCells            int     `json:"indexedCells"`
	TrieBytes               int64   `json:"trieBytes"`
	TableBytes              int64   `json:"tableBytes"`
	PrecisionMeters         float64 `json:"precisionMeters"`
	AchievedPrecisionMeters float64 `json:"achievedPrecisionMeters"`
	Grid                    string  `json:"grid"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.idx.Stats()
	writeJSON(w, statsResponse{
		NumPolygons:             st.NumPolygons,
		IndexedCells:            st.IndexedCells,
		TrieBytes:               st.TrieBytes,
		TableBytes:              st.TableBytes,
		PrecisionMeters:         s.idx.PrecisionMeters(),
		AchievedPrecisionMeters: st.AchievedPrecisionMeters,
		Grid:                    s.idx.GridName(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
