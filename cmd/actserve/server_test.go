package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/actindex/act"
)

func testServer(t *testing.T) (*Server, *act.Index) {
	t.Helper()
	zone := &act.Polygon{Outer: []act.LatLng{
		{Lat: 40.70, Lng: -74.02},
		{Lat: 40.70, Lng: -73.96},
		{Lat: 40.76, Lng: -73.96},
		{Lat: 40.76, Lng: -74.02},
	}}
	idx, err := act.BuildIndex([]*act.Polygon{zone}, act.Options{PrecisionMeters: 10})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(idx), idx
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestLookupHit(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/lookup?lat=40.73&lng=-73.99")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp lookupResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Matched || len(resp.True) != 1 || resp.True[0] != 0 {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Epsilon != 10 {
		t.Errorf("epsilon = %v", resp.Epsilon)
	}
}

func TestLookupMiss(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/lookup?lat=41.5&lng=-73.99")
	var resp lookupResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Matched || len(resp.True) != 0 || len(resp.Candidates) != 0 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestLookupExactParam(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/lookup?lat=40.73&lng=-73.99&exact=1")
	var resp lookupResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Exact || !resp.Matched || len(resp.Candidates) != 0 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestLookupValidation(t *testing.T) {
	s, _ := testServer(t)
	for _, path := range []string{
		"/lookup",
		"/lookup?lat=abc&lng=1",
		"/lookup?lat=1",
		"/lookup?lat=95&lng=0",
		"/lookup?lat=0&lng=181",
	} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	s, idx := testServer(t)
	rec := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var resp statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NumPolygons != 1 || resp.Grid != "planar" ||
		resp.IndexedCells != idx.Stats().IndexedCells {
		t.Errorf("stats = %+v", resp)
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("health status %d", rec.Code)
	}
}

func TestConcurrentLookups(t *testing.T) {
	s, _ := testServer(t)
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- true }()
			for i := 0; i < 200; i++ {
				rec := get(t, s, "/lookup?lat=40.73&lng=-73.99")
				if rec.Code != http.StatusOK {
					t.Errorf("status %d", rec.Code)
					return
				}
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
