// Command actserve exposes an ACT index as an HTTP geofencing service —
// the deployment shape of the paper's motivating use case (map incoming
// ride requests to zones in real time).
//
//	actgen -dataset neighborhoods -o n.geojson
//	actserve -polygons n.geojson -precision 4 -addr :8080
//
//	GET /lookup?lat=40.758&lng=-73.9855          approximate lookup
//	GET /lookup?lat=40.758&lng=-73.9855&exact=1  exact (refined) lookup
//	POST /join                                   batch join, streamed as NDJSON
//	GET /stats                                   index statistics
//	GET /healthz                                 liveness
//
// POST /join accepts {"points":[{"lat":..,"lng":..},...],"exact":bool,
// "threads":n} and streams one {"point","polygon","class"} object per join
// pair followed by a {"stats":{...}} trailer — the deployment shape for
// bulk scoring and materialized joins over the same immutable index.
//
// Responses are JSON. The index is immutable after startup, so the
// handlers are trivially safe for concurrent use.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/actindex/act"
	"github.com/actindex/act/internal/geojson"
)

func main() {
	polyFile := flag.String("polygons", "", "GeoJSON file with the polygon set (required)")
	precision := flag.Float64("precision", 4, "precision bound ε in meters")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	if *polyFile == "" {
		fmt.Fprintln(os.Stderr, "actserve: -polygons is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*polyFile)
	if err != nil {
		log.Fatalf("actserve: %v", err)
	}
	polys, err := geojson.ReadPolygons(f)
	f.Close()
	if err != nil {
		log.Fatalf("actserve: %v", err)
	}
	idx, err := act.BuildIndex(polys, act.Options{PrecisionMeters: *precision})
	if err != nil {
		log.Fatalf("actserve: build: %v", err)
	}
	st := idx.Stats()
	log.Printf("actserve: %d polygons, %d cells, %.1f MB, ε=%.1fm, listening on %s",
		st.NumPolygons, st.IndexedCells, float64(st.TotalBytes())/1e6, *precision, *addr)

	log.Fatal(http.ListenAndServe(*addr, NewServer(idx)))
}
