// Command actserve exposes an ACT index as an HTTP geofencing service —
// the deployment shape of the paper's motivating use case (map incoming
// ride requests to zones in real time).
//
//	actgen -dataset neighborhoods -o n.geojson
//	actserve -polygons n.geojson -precision 4 -addr :8080
//
//	GET    /lookup?lat=40.758&lng=-73.9855          approximate lookup
//	GET    /lookup?lat=40.758&lng=-73.9855&exact=1  exact (refined) lookup
//	POST   /join                                    batch join, streamed as NDJSON
//	POST   /reload                                  swap in a new polygon set
//	POST   /polygons                                insert polygons (GeoJSON body)
//	DELETE /polygons/{id}                           remove one polygon
//	GET    /stats                                   index statistics
//	GET    /healthz                                 liveness
//	GET    /debug/pprof/                            profiling (with -pprof)
//
// POST /join accepts {"points":[{"lat":..,"lng":..},...],"exact":bool,
// "threads":n} and streams one {"point","polygon","class"} object per join
// pair followed by a {"stats":{...}} trailer. The join runs under the
// request context, so a disconnected client aborts it promptly.
//
// POST /reload accepts {"polygons":"path"} or {"index":"path"} (with
// optional "precision" and "grid" overrides), builds or deserializes the
// replacement in the background, and swaps it in atomically: lookups and
// joins keep serving the old index until the swap, with zero downtime. It
// reads server-local files and replaces the live index, so protect it with
// -reload-token (Authorization: Bearer) unless the listener is trusted.
//
// Index files — both -index at startup and {"index":...} reloads — are
// served zero-copy: current-format files are memory-mapped and the trie is
// read in place from the page cache, so swinging a multi-hundred-MB index
// in costs a header read plus validation rather than an arena-sized copy.
// The previous mapping is released automatically once the last in-flight
// request on the old index retires. /stats reports "mapped": true when the
// live index is served this way.
//
// POST /polygons (a GeoJSON FeatureCollection, Feature, or geometry body)
// and DELETE /polygons/{id} mutate the live index in place: inserts are
// covered and served from a delta layer immediately, removes tombstone the
// id, and a background compaction folds the delta into a fresh base trie
// without blocking a single lookup — polygon churn without the full
// rebuild of /reload. Both endpoints honour -reload-token. /stats reports
// the mutation layer (livePolygons, deltaPolygons, tombstones,
// compactions). Indexes started from -index files are immutable (409);
// start from -polygons (or -wal) to serve mutations.
//
// -wal makes the mutations durable: every accepted insert and remove is
// appended to the write-ahead log before the response is written (fsync
// cadence per -fsync), and on restart the log tail is replayed so the
// served polygon set picks up exactly where the crashed process left off.
// With both -wal and -index, the index file doubles as the checkpoint
// snapshot: each compaction atomically rewrites it and truncates the log,
// and startup resumes from snapshot + log tail (act.Recover) when the file
// exists — falling back to a fresh -polygons build (with log replay on
// top) when it does not. /stats reports the log position (walSeq,
// walBytes, lastFsyncMillis, recoveredRecords).
//
// With both -wal and -index set, the server is also a replication primary:
// GET /replication/snapshot serves the checkpoint snapshot and GET
// /replication/stream serves the log as a resumable record stream. A second
// actserve started with -replicate-from http://primary:8080 serves a
// read-only replica: it bootstraps from the snapshot, applies streamed
// records as they arrive (lookups and joins never block on replication),
// reconnects with backoff across stream loss, and re-bootstraps when a
// primary checkpoint outruns it. On a follower the mutating endpoints
// answer 409 pointing at the primary, and /stats reports the role plus the
// replication position and lag.
//
// Failover: when the primary dies, POST /promote on a follower turns it
// into the next primary — the stream is drained as far as the old primary
// still delivers, the follower's state becomes the new checkpoint snapshot,
// and a fresh WAL is opened under a bumped fencing epoch. Promotion is
// refused (409) if the follower has not applied everything the old primary
// acknowledged. A resurrected stale primary is fenced by the new epoch the
// moment a replication request reaches it: its /replication/* endpoints
// answer 412 and its mutations 503. Degradation is fail-stop throughout: a
// WAL write or fsync error makes the index reject further mutations (503,
// cause in /stats walFailed) rather than acknowledge writes it cannot make
// durable; reads keep serving. The replication endpoints and /promote
// honour -reload-token; followers present -replicate-token (default: the
// -reload-token value) to the primary.
//
// The index is held in an act.Swappable; handlers load it once per
// request, so every request sees one consistent index. On SIGINT/SIGTERM
// the server stops accepting connections and drains in-flight requests
// (including streaming NDJSON joins) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/actindex/act"
	"github.com/actindex/act/internal/replica"
	"github.com/actindex/act/internal/server"
)

func main() {
	polyFile := flag.String("polygons", "", "GeoJSON file with the polygon set")
	indexFile := flag.String("index", "", "serialized index file (alternative to -polygons; with -wal, the checkpoint snapshot path)")
	precision := flag.Float64("precision", 4, "precision bound ε in meters")
	gridFlag := flag.String("grid", "planar", "hierarchical grid: planar | cubeface")
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 30*time.Second, "max time to drain in-flight requests on shutdown")
	reloadToken := flag.String("reload-token", "", "bearer token required by POST /reload (empty: no auth; only safe on trusted listeners)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling; only safe on trusted listeners)")
	walFile := flag.String("wal", "", "write-ahead log file: mutations are logged before acknowledgement and replayed on restart")
	fsyncFlag := flag.String("fsync", "always", "WAL fsync policy: always | interval | off")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "flush cadence for -fsync interval")
	replicateFrom := flag.String("replicate-from", "", "primary base URL to follow (e.g. http://primary:8080): serve a read-only replica fed by its WAL stream")
	replicaDir := flag.String("replica-dir", "", "directory for downloaded bootstrap snapshots in -replicate-from mode (default: a temp dir)")
	replicateToken := flag.String("replicate-token", "", "bearer token presented to the primary's replication endpoints (default: the -reload-token value)")
	logFormat := flag.String("log-format", "text", "structured log encoding on stderr: text | json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	mutationRPS := flag.Float64("mutation-rps", 0, "token-bucket rate limit on the mutation endpoints, requests/second (0: no limit); excess requests get 429 + Retry-After")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actserve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *replicateToken == "" {
		*replicateToken = *reloadToken
	}
	if *replicateFrom != "" {
		if *polyFile != "" || *indexFile != "" || *walFile != "" {
			fmt.Fprintln(os.Stderr, "actserve: -replicate-from takes its data from the primary; -polygons, -index, and -wal do not apply")
			flag.Usage()
			os.Exit(2)
		}
		runFollower(logger, *replicateFrom, *replicaDir, *addr, *reloadToken, *replicateToken, *pprofFlag, *mutationRPS, *drain)
		return
	}

	// Without a WAL, exactly one source; with one, -polygons and -index
	// compose (build source and checkpoint snapshot), but at least one of
	// them must say where the polygons come from.
	if *walFile == "" && (*polyFile == "") == (*indexFile == "") {
		fmt.Fprintln(os.Stderr, "actserve: exactly one of -polygons and -index is required")
		flag.Usage()
		os.Exit(2)
	}
	if *walFile != "" && *polyFile == "" && *indexFile == "" {
		fmt.Fprintln(os.Stderr, "actserve: -wal needs -polygons (build source) and/or -index (snapshot)")
		flag.Usage()
		os.Exit(2)
	}
	gk, err := server.ParseGridKind(*gridFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actserve: %v\n", err)
		os.Exit(2)
	}
	fsync, err := server.ParseFsyncPolicy(*fsyncFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "actserve: %v\n", err)
		os.Exit(2)
	}

	// The instrument set exists before the index so the WAL's append/fsync
	// hooks are live from the very first replayed record; the server created
	// below serves the same registry at GET /metrics.
	metrics := server.NewMetrics()
	observer := metrics.ActObserver(logger)

	var (
		idx       *act.Index
		recovered bool
	)
	switch {
	case *walFile != "":
		if *indexFile != "" {
			if _, statErr := os.Stat(*indexFile); statErr == nil {
				// A checkpoint snapshot exists: resume from it plus the log
				// tail. The snapshot, not -polygons, is authoritative — it
				// already folds in every checkpointed mutation.
				idx, err = act.Recover(*indexFile, *walFile,
					act.WithWAL(act.WALConfig{Policy: fsync, Interval: *fsyncEvery}),
					act.WithObserver(observer))
				recovered = true
				break
			}
		}
		if *polyFile == "" {
			fatal(logger, "snapshot missing and no -polygons to build from", slog.String("snapshot", *indexFile))
		}
		idx, err = server.BuildFromGeoJSON(*polyFile, *precision, gk,
			act.WithWAL(act.WALConfig{
				Path:         *walFile,
				SnapshotPath: *indexFile,
				Policy:       fsync,
				Interval:     *fsyncEvery,
			}),
			act.WithObserver(observer))
	case *indexFile != "":
		idx, err = server.LoadIndexFile(*indexFile)
	default:
		idx, err = server.BuildFromGeoJSON(*polyFile, *precision, gk, act.WithObserver(observer))
	}
	if err != nil {
		fatal(logger, "startup failed", slog.String("error", err.Error()))
	}
	st := idx.Stats()
	logger.Info("serving",
		slog.Int("polygons", st.NumPolygons),
		slog.Int("cells", st.IndexedCells),
		slog.Float64("mb", float64(st.TotalBytes())/1e6),
		slog.Float64("epsilon_meters", idx.PrecisionMeters()),
		slog.String("addr", *addr),
	)
	if ws := idx.WALStats(); ws.Enabled {
		logger.Info("wal attached",
			slog.String("path", *walFile),
			slog.String("fsync", fsync.String()),
			slog.Uint64("seq", ws.Seq),
			slog.Uint64("epoch", ws.Epoch),
			slog.Int("replayed_records", ws.RecoveredRecords),
		)
	}

	// Reload defaults follow what is actually being served: for -index,
	// the loaded index's own precision and grid (the -precision/-grid
	// flags only parameterize builds), so a plain {"polygons":...} reload
	// cannot silently change the service's precision guarantee.
	defaults := server.BuildDefaults{Precision: *precision, Grid: gk}
	if recovered || (*walFile == "" && *indexFile != "") {
		defaults = server.BuildDefaults{Precision: idx.PrecisionMeters(), Grid: idx.GridKind()}
	}
	indexes := act.NewSwappable(idx)
	handler := server.NewServer(indexes, defaults, metrics)
	handler.Logger = logger
	handler.ReloadToken = *reloadToken
	handler.EnableMutationLimit(*mutationRPS)
	if *mutationRPS > 0 {
		logger.Info("mutation rate limit enabled", slog.Float64("rps", *mutationRPS))
	}
	if *walFile != "" && *indexFile != "" {
		// The durability pair doubles as the replication feed: followers
		// bootstrap from the checkpoint snapshot and tail the log.
		handler.EnablePrimary(replica.NewPrimary(idx, *walFile, *indexFile))
		logger.Info("replication primary enabled",
			slog.String("role", "primary"),
			slog.String("snapshot", *indexFile),
			slog.String("wal", *walFile),
		)
	}
	if *pprofFlag {
		handler.EnablePprof()
		logger.Info("pprof enabled", slog.String("prefix", "/debug/pprof/"))
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(logger, "serve failed", slog.String("error", err.Error()))
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", slog.Duration("max", *drain))
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Error("shutdown failed", slog.String("error", err.Error()))
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener error", slog.String("error", err.Error()))
	}
	// Close the startup index so an attached WAL flushes its tail and a
	// reopened log sees a clean shutdown (zero records to replay).
	if err := idx.Close(); err != nil {
		logger.Error("closing index failed", slog.String("error", err.Error()))
	}
	logger.Info("drained, exiting")
}

// buildLogger maps the -log-format and -log-level flags to a slog logger on
// stderr.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// fatal logs the error and exits non-zero — the slog replacement for
// log.Fatalf.
func fatal(logger *slog.Logger, msg string, attrs ...any) {
	logger.Error(msg, attrs...)
	os.Exit(1)
}

// runFollower serves a read-only replica: it bootstraps from the primary's
// checkpoint snapshot, follows its log stream, and swaps re-bootstrapped
// indexes in under live traffic. Lookups, joins, and /stats serve normally;
// the mutating endpoints answer 409 pointing at the primary.
func runFollower(logger *slog.Logger, primaryURL, dir, addr, reloadToken, replicateToken string, pprofOn bool, mutationRPS float64, drain time.Duration) {
	logger = logger.With(slog.String("role", "follower"))
	if dir == "" {
		d, err := os.MkdirTemp("", "actserve-replica-*")
		if err != nil {
			fatal(logger, "creating replica dir failed", slog.String("error", err.Error()))
		}
		defer os.RemoveAll(d)
		dir = d
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	metrics := server.NewMetrics()
	fol := replica.NewFollower(primaryURL, dir, act.WithObserver(metrics.ActObserver(logger)))
	fol.Token = replicateToken
	fol.Logger = logger
	if err := fol.Bootstrap(ctx); err != nil {
		fatal(logger, "bootstrap failed", slog.String("primary", primaryURL), slog.String("error", err.Error()))
	}
	idx := fol.Index()
	st := idx.Stats()
	logger.Info("following",
		slog.String("primary", primaryURL),
		slog.Int("polygons", st.NumPolygons),
		slog.Float64("mb", float64(st.TotalBytes())/1e6),
		slog.Float64("epsilon_meters", idx.PrecisionMeters()),
		slog.String("addr", addr),
	)

	indexes := act.NewSwappable(idx)
	// OnSwap is set after the initial Bootstrap, so it fires only for
	// re-bootstraps (a primary checkpoint outran this replica): swing the
	// fresh index in exactly like a /reload would. Swapped-out indexes are
	// memory-mapped snapshots; their mappings are released by the runtime
	// once the last in-flight request on them retires.
	fol.OnSwap = func(ix *act.Index) {
		indexes.Swap(ix)
		logger.Info("re-bootstrapped",
			slog.String("primary", primaryURL),
			slog.Uint64("generation", indexes.Generation()))
	}
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		fol.Run(ctx)
	}()

	handler := server.NewServer(indexes, server.BuildDefaults{Precision: idx.PrecisionMeters(), Grid: idx.GridKind()}, metrics)
	handler.Logger = logger
	handler.ReloadToken = reloadToken
	handler.EnableMutationLimit(mutationRPS)
	handler.EnableFollower(fol)
	if pprofOn {
		handler.EnablePprof()
		logger.Info("pprof enabled", slog.String("prefix", "/debug/pprof/"))
	}
	srv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(logger, "serve failed", slog.String("error", err.Error()))
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", slog.Duration("max", drain))
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Error("shutdown failed", slog.String("error", err.Error()))
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener error", slog.String("error", err.Error()))
	}
	// The replication loop has quit (its context is done); now the serving
	// index can close without racing an apply.
	<-runDone
	if err := fol.Index().Close(); err != nil {
		logger.Error("closing index failed", slog.String("error", err.Error()))
	}
	logger.Info("drained, exiting")
}
