// Command actbench regenerates the tables and figures of the paper's
// evaluation on synthetic NYC-like data:
//
//	actbench -experiment table1           # Table I: index metrics
//	actbench -experiment fig3             # Fig. 3: single-threaded throughput
//	actbench -experiment scale            # Fig. 4: thread scalability 1→NumCPU,
//	                                      # heap-loaded vs mmap-served
//	                                      # ("fig4" is an alias)
//	actbench -experiment exact            # approximate vs exact joins:
//	                                      # true-hit ratio + refinement cost
//	actbench -experiment interleave       # K-way interleaved batch probes
//	                                      # vs the scalar walk, per fanout
//	actbench -experiment delta            # live-mutation overhead: merged
//	                                      # base+delta lookups vs pure base
//	actbench -experiment wal              # durability: mutation throughput
//	                                      # per fsync policy + replay cost
//	actbench -experiment replica          # replication: follower catch-up
//	                                      # throughput + steady-state lag
//	                                      # vs primary mutation rate
//	actbench -experiment serve            # HTTP serving: per-endpoint
//	                                      # p50/p95/p99 latency + throughput
//	                                      # at stepped client concurrency,
//	                                      # cross-checked against /metrics
//	actbench -experiment ablation         # design-choice ablations
//	actbench -experiment all              # everything
//
// Scale knobs:
//
//	-census N    census-blocks polygon count (default 4000; paper: 39184)
//	-points N    join points per measurement (default 2000000; paper: 1e9)
//	-threads a,b thread counts for scale (default auto: powers of two up to
//	             NumCPU, plus a 2×NumCPU oversubscription row)
//	-dist d      point distribution: uniform|clustered|adversarial
//	-seed S      dataset seed
//
// Profiling (any experiment):
//
//	-cpuprofile f   write a CPU profile covering the selected experiments
//	-memprofile f   write a heap profile taken after the experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/actindex/act/internal/bench"
	"github.com/actindex/act/internal/data"
)

func main() {
	experiment := flag.String("experiment", "all", "table1 | fig3 | scale (alias fig4) | exact | interleave | delta | wal | replica | serve | ablation | all")
	census := flag.Int("census", 4000, "census-blocks polygon count (paper: 39184)")
	points := flag.Int("points", 2_000_000, "join points per measurement (paper: 1e9)")
	seed := flag.Int64("seed", 42, "dataset generation seed")
	threadsFlag := flag.String("threads", "auto", "comma-separated thread counts for scale (auto: 1→NumCPU→2×NumCPU)")
	distFlag := flag.String("dist", "uniform", "point distribution: uniform | clustered | adversarial")
	jsonOut := flag.String("jsonout", ".", "directory for machine-readable BENCH_*.json result files (empty disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the experiments to this file")
	flag.Parse()

	var dist data.Distribution
	switch *distFlag {
	case "uniform":
		dist = data.Uniform
	case "clustered":
		dist = data.Clustered
	case "adversarial":
		dist = data.Adversarial
	default:
		fmt.Fprintf(os.Stderr, "actbench: unknown distribution %q\n", *distFlag)
		os.Exit(2)
	}

	var threads []int // nil selects bench.ScaleThreads
	if *threadsFlag != "auto" {
		var err error
		if threads, err = parseThreads(*threadsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "actbench: %v\n", err)
			os.Exit(2)
		}
	}

	// fig4 folded into scale: same curve, now measured over both serving
	// paths. The old name keeps working.
	if *experiment == "fig4" {
		*experiment = "scale"
	}

	cfg := bench.Config{
		CensusRegions: *census,
		Points:        *points,
		Seed:          *seed,
		Distribution:  dist,
	}
	w := os.Stdout
	fmt.Fprintf(w, "actbench: census=%d points=%d dist=%s seed=%d\n",
		*census, *points, dist, *seed)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "actbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		// Stopped explicitly before exit below; os.Exit in run() skips this
		// deliberately, a partial profile from a failed run is worthless.
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "actbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	// measured experiments additionally dump their records as
	// BENCH_<file>.json so the throughput trajectory is diffable across
	// changes without scraping the human-readable tables.
	measured := func(name, file string, f func() ([]bench.Record, error)) {
		run(name, func() error {
			records, err := f()
			if err != nil {
				return err
			}
			if *jsonOut == "" {
				return nil
			}
			return writeRecords(*jsonOut, file, cfg, records)
		})
	}
	run("table1", func() error { return bench.RunTableI(w, cfg) })
	measured("fig3", "fig3", func() ([]bench.Record, error) { return bench.RunFig3(w, cfg) })
	// The scale experiment's records land in BENCH_6.json: the zero-copy
	// serving and multicore scale-out's tracked artefact (thread-scaling
	// curve 1→NumCPU over heap-loaded and mmap-served indexes, with load
	// latencies and the per-mode speedup over one thread).
	measured("scale", "6", func() ([]bench.Record, error) { return bench.RunScale(w, cfg, threads) })
	// The exact experiment's records land in BENCH_3.json: the refinement
	// subsystem's tracked artefact (true-hit ratio and refinement overhead
	// per precision).
	measured("exact", "3", func() ([]bench.Record, error) { return bench.RunExact(w, cfg) })
	// The interleave sweep lands in BENCH_4.json: the interleaved probe
	// engine's tracked artefact (width × fanout throughput and the speedup
	// over the scalar batch walk).
	measured("interleave", "4", func() ([]bench.Record, error) { return bench.RunInterleave(w, cfg) })
	// The delta experiment's records land in BENCH_5.json: the live-
	// mutation subsystem's tracked artefact (merged-lookup overhead per
	// delta fraction, and the post-compaction recovery).
	measured("delta", "5", func() ([]bench.Record, error) { return bench.RunDelta(w, cfg) })
	// The wal experiment's records land in BENCH_7.json: the durability
	// subsystem's tracked artefact (mutation throughput per fsync policy,
	// and recovery time versus replayed log length).
	measured("wal", "7", func() ([]bench.Record, error) { return bench.RunWAL(w, cfg) })
	// The replica experiment's records land in BENCH_8.json: the
	// replication subsystem's tracked artefact (follower catch-up
	// throughput per backlog length, and mean sequence lag per primary
	// mutation rate).
	measured("replica", "8", func() ([]bench.Record, error) { return bench.RunReplica(w, cfg) })
	// The serve experiment's records land in BENCH_10.json: the
	// observability layer's tracked artefact (per-endpoint latency
	// percentiles and throughput through the fully instrumented HTTP
	// stack, with a /metrics self-consistency check over the driven load).
	measured("serve", "10", func() ([]bench.Record, error) { return bench.RunServe(w, cfg) })
	run("ablation", func() error { return bench.RunAblations(w, cfg) })

	switch *experiment {
	case "table1", "fig3", "scale", "exact", "interleave", "delta", "wal", "replica", "serve", "ablation", "all":
	default:
		fmt.Fprintf(os.Stderr, "actbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actbench: memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "actbench: memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// benchFile is the schema of a BENCH_*.json result file.
type benchFile struct {
	Config  bench.Config   `json:"config"`
	Records []bench.Record `json:"records"`
}

// writeRecords dumps one experiment's records to dir/BENCH_<name>.json.
func writeRecords(dir, name string, cfg bench.Config, records []bench.Record) error {
	path := filepath.Join(dir, "BENCH_"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchFile{Config: cfg, Records: records}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "actbench: wrote %s (%d records)\n", path, len(records))
	return nil
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts in %q", s)
	}
	return out, nil
}
