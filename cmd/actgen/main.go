// Command actgen generates the synthetic NYC-like datasets used by the
// benchmark harness and writes them as GeoJSON (and optionally SVG for
// visual inspection of coverings, in the spirit of the paper's Figure 1).
//
//	actgen -dataset neighborhoods -o neighborhoods.geojson
//	actgen -dataset boroughs -svg boroughs.svg -precision 60
//	actgen -dataset census -census 4000 -o census.geojson
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/actindex/act/internal/cover"
	"github.com/actindex/act/internal/data"
	"github.com/actindex/act/internal/geojson"
	"github.com/actindex/act/internal/grid"
)

func main() {
	dataset := flag.String("dataset", "neighborhoods", "boroughs | neighborhoods | census")
	census := flag.Int("census", 4000, "census-blocks polygon count")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("o", "", "output GeoJSON file (default stdout)")
	svg := flag.String("svg", "", "also render polygons + covering to this SVG file")
	precision := flag.Float64("precision", 60, "covering precision in meters for -svg")
	flag.Parse()

	var (
		set *data.PolygonSet
		err error
	)
	switch *dataset {
	case "boroughs":
		set, err = data.Boroughs(*seed)
	case "neighborhoods":
		set, err = data.Neighborhoods(*seed)
	case "census":
		set, err = data.CensusBlocks(*seed, *census)
	default:
		fmt.Fprintf(os.Stderr, "actgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "actgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "actgen: %s: %d polygons, %d vertices\n",
		set.Name, len(set.Polygons), set.NumVertices())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := geojson.WritePolygons(w, set.Polygons); err != nil {
		fmt.Fprintf(os.Stderr, "actgen: %v\n", err)
		os.Exit(1)
	}

	if *svg != "" {
		g := grid.NewPlanar()
		coverer, err := cover.NewCoverer(g, *precision)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actgen: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "actgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := renderSVG(f, set, g, coverer); err != nil {
			fmt.Fprintf(os.Stderr, "actgen: svg: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "actgen: wrote covering illustration to %s\n", *svg)
	}
}
