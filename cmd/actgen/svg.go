package main

import (
	"fmt"
	"io"

	"github.com/actindex/act/internal/cellid"
	"github.com/actindex/act/internal/cover"
	"github.com/actindex/act/internal/data"
	"github.com/actindex/act/internal/geo"
	"github.com/actindex/act/internal/grid"
)

// renderSVG draws the polygon set with its coverings: boundary cells in
// blue, interior cells in green, polygon outlines in black — the color
// scheme of the paper's Figure 1.
func renderSVG(w io.Writer, set *data.PolygonSet, g grid.Grid, coverer *cover.Coverer) error {
	const width = 1200.0
	b := set.Bound
	scaleX := width / (b.MaxLng - b.MinLng)
	height := (b.MaxLat - b.MinLat) * scaleX
	toX := func(lng float64) float64 { return (lng - b.MinLng) * scaleX }
	toY := func(lat float64) float64 { return height - (lat-b.MinLat)*scaleX }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintln(w, `<rect width="100%" height="100%" fill="white"/>`)

	cellRect := func(id cellid.ID) (x, y, cw, ch float64) {
		r := grid.CellRect(id)
		sw := g.Unproject(id.Face(), r.Min)
		ne := g.Unproject(id.Face(), r.Max)
		return toX(sw.Lng), toY(ne.Lat), toX(ne.Lng) - toX(sw.Lng), toY(sw.Lat) - toY(ne.Lat)
	}

	for _, p := range set.Polygons {
		cov, err := coverer.Cover(p)
		if err != nil {
			return err
		}
		for _, id := range cov.Interior {
			x, y, cw, ch := cellRect(id)
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#2ca02c" fill-opacity="0.45" stroke="#1a701a" stroke-width="0.2"/>`+"\n", x, y, cw, ch)
		}
		for _, id := range cov.Boundary {
			x, y, cw, ch := cellRect(id)
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#1f77b4" fill-opacity="0.55" stroke="#11446e" stroke-width="0.2"/>`+"\n", x, y, cw, ch)
		}
	}
	for _, p := range set.Polygons {
		writeRing(w, p.Outer, toX, toY)
		for _, h := range p.Holes {
			writeRing(w, h, toX, toY)
		}
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

func writeRing(w io.Writer, ring []geo.LatLng, toX, toY func(float64) float64) {
	fmt.Fprint(w, `<polygon points="`)
	for _, v := range ring {
		fmt.Fprintf(w, "%.2f,%.2f ", toX(v.Lng), toY(v.Lat))
	}
	fmt.Fprintln(w, `" fill="none" stroke="black" stroke-width="0.8"/>`)
}
