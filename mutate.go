package act

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/actindex/act/internal/cellid"
	"github.com/actindex/act/internal/core"
	"github.com/actindex/act/internal/delta"
	"github.com/actindex/act/internal/geojson"
	"github.com/actindex/act/internal/geom"
	"github.com/actindex/act/internal/geostore"
	"github.com/actindex/act/internal/grid"
	"github.com/actindex/act/internal/supercover"
	"github.com/actindex/act/internal/wal"
)

// Live index mutation.
//
// The index absorbs polygon churn LSM-style: Insert covers the new polygon
// with the index's own coverer and adds it to a small delta layer (its own
// trie plus the projected geometry); Remove tombstones the id. Every
// lookup — scalar, batch, and interleaved — merges base and delta:
// tombstoned ids are filtered from the base trie's result, delta references
// appended after it. When the pending-mutation count crosses the
// compaction threshold, a background compactor reruns the full build
// pipeline over the surviving polygon set (original ids kept, removed ids
// left as holes) and swings the fresh base in atomically through the
// index's epoch Holder — readers never block, and an in-flight join keeps
// the epoch it loaded for its whole run. Mutations that land while the
// compactor runs survive as a residual overlay on the new base.

// Mutation errors.
var (
	// ErrImmutable is reported by Insert, Remove, and Compact on an index
	// that was loaded with ReadIndex or OpenIndex. Build the index
	// in-process (New/BuildIndex) or resurrect it with [Recover] to
	// mutate it.
	ErrImmutable = errors.New("act: index was deserialized without source polygons and cannot be mutated")
	// ErrUnknownPolygon is reported by Remove for an id that was never
	// assigned or has already been removed.
	ErrUnknownPolygon = errors.New("act: unknown or already-removed polygon id")
	// ErrNoCheckpoint is reported by Checkpoint on an index without an
	// attached WAL and snapshot path — there is nowhere to checkpoint to.
	ErrNoCheckpoint = errors.New("act: checkpoint needs a WAL with a snapshot path")
)

// DeltaStats describes the state of the index's mutation layer.
type DeltaStats struct {
	// DeltaPolygons is the number of polygons currently served from the
	// delta layer (inserted since the last compaction).
	DeltaPolygons int
	// Tombstones is the number of removals pending compaction.
	Tombstones int
	// Pending is DeltaPolygons + Tombstones — the quantity measured
	// against Threshold.
	Pending int
	// Threshold is the pending-mutation count that triggers background
	// compaction; negative means auto-compaction is disabled.
	Threshold int
	// Compactions counts completed compactions over the index lifetime.
	Compactions uint64
	// LivePolygons is the current live polygon count (NumPolygons).
	LivePolygons int
}

// DeltaStats returns the current state of the mutation layer. The overlay
// counters are read from one epoch, so they are mutually consistent.
func (ix *Index) DeltaStats() DeltaStats {
	ep := ix.live.Load()
	return DeltaStats{
		DeltaPolygons: ep.ov.NumPolygons(),
		Tombstones:    ep.ov.NumTombstones(),
		Pending:       ep.ov.Pending(),
		Threshold:     ix.deltaThreshold,
		Compactions:   ix.compactions.Load(),
		LivePolygons:  ix.NumPolygons(),
	}
}

// Mutable reports whether the index can absorb Insert and Remove: true for
// indexes built in-process or resurrected by Recover, false for indexes
// loaded with ReadIndex/OpenIndex and for replication followers (whose
// mutations arrive from the primary's log stream, not from clients).
func (ix *Index) Mutable() bool { return ix.mutable && !ix.follower }

// IsDelta reports whether the polygon id is currently served from the
// delta layer rather than the base trie. After a compaction folds the
// delta into the base, IsDelta reports false for the absorbed ids — the
// distinction is an observability aid (actquery -verbose tags matches with
// it), not a semantic one.
func (ix *Index) IsDelta(id uint32) bool { return ix.live.Load().ov.HasPolygon(id) }

// Epoch returns the generation of the serving state: it advances on every
// Insert, Remove, and compaction, so operators can observe mutation
// progress the way Swappable generations expose index swaps.
func (ix *Index) Epoch() uint64 { return ix.live.Generation() }

// Insert adds a polygon to the live index and returns its id — the next id
// in the sequence started by the build (ids are never reused, so removed
// ids stay dangling forever). The polygon is covered with the index's own
// precision and grid, served from the delta layer immediately on return,
// and folded into the base trie by the next compaction. Concurrent lookups
// and joins are never blocked: they keep the epoch they loaded, and the
// new polygon becomes visible to operations that start after Insert
// returns. Inserts are serialized with other mutations; the covering
// computation (the dominant cost) runs under that lock, so sustained bulk
// loads should prefer a rebuild via [Swappable].
//
// Reports ErrImmutable on a deserialized index.
func (ix *Index) Insert(ctx context.Context, p *Polygon) (uint32, error) {
	if p == nil {
		return 0, fmt.Errorf("act: insert: nil polygon")
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.mutable {
		return 0, ErrImmutable
	}
	if ix.follower {
		return 0, ErrFollower
	}
	if err := ix.writableLocked(); err != nil {
		return 0, err
	}
	if len(ix.alive) > supercover.MaxPolygonID {
		return 0, fmt.Errorf("act: insert: the 2^30 polygon id space is exhausted")
	}
	cov, err := ix.pl.cover(p)
	if err != nil {
		return 0, fmt.Errorf("act: insert: %w", err)
	}
	var gp *geom.Polygon
	if ix.pl.hasGeom {
		if _, gp, err = grid.ProjectPolygon(ix.grid, p); err != nil {
			return 0, fmt.Errorf("act: insert: %w", err)
		}
	}
	id := uint32(len(ix.alive))
	ep := ix.live.Load()
	ov, err := ep.ov.WithInsert(ix.pl.fanout, delta.Poly{ID: id, Cov: cov, Geom: gp, Seq: ix.seq + 1})
	if err != nil {
		return 0, err
	}
	// Write-ahead: the record must be durably logged (per the fsync
	// policy) before the mutation is acknowledged or served. On append
	// failure nothing below commits, so log and index stay consistent.
	if ix.wal != nil {
		var buf bytes.Buffer
		if err := geojson.WritePolygons(&buf, []*Polygon{p}); err != nil {
			return 0, fmt.Errorf("act: insert: encoding WAL record: %w", err)
		}
		rec := wal.Record{Type: wal.TypeInsert, Seq: ix.seq + 1, ID: id, Data: buf.Bytes()}
		if err := ix.wal.Append(rec); err != nil {
			if ix.wal.Err() != nil {
				err = fmt.Errorf("%w: %w", ErrWALFailed, err)
			}
			return 0, fmt.Errorf("act: insert: %w", err)
		}
	}
	ix.seq++
	ix.alive = append(ix.alive, true)
	if ix.srcComplete {
		ix.sources = append(ix.sources, p)
	}
	ix.idSpace.Store(int64(len(ix.alive)))
	ix.liveCount.Add(1)
	ix.live.Swap(&epoch{trie: ep.trie, store: ep.store, ov: ov, stats: ep.stats})
	ix.maybeCompact(ov)
	return id, nil
}

// Remove deletes the polygon with the given id from the live index. The id
// is tombstoned: lookups that start after Remove returns stop reporting
// it, in-flight operations keep the epoch they loaded, and the next
// compaction rebuilds the base without it (the id itself is never reused).
//
// Reports ErrUnknownPolygon for ids never assigned or already removed, and
// ErrImmutable on a deserialized index.
func (ix *Index) Remove(ctx context.Context, id uint32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.mutable {
		return ErrImmutable
	}
	if ix.follower {
		return ErrFollower
	}
	if err := ix.writableLocked(); err != nil {
		return err
	}
	if int(id) >= len(ix.alive) || !ix.alive[id] {
		return fmt.Errorf("%w: %d", ErrUnknownPolygon, id)
	}
	ep := ix.live.Load()
	ov, err := ep.ov.WithRemove(ix.pl.fanout, id, ix.seq+1)
	if err != nil {
		return err
	}
	if ix.wal != nil {
		rec := wal.Record{Type: wal.TypeRemove, Seq: ix.seq + 1, ID: id}
		if err := ix.wal.Append(rec); err != nil {
			if ix.wal.Err() != nil {
				err = fmt.Errorf("%w: %w", ErrWALFailed, err)
			}
			return fmt.Errorf("act: remove: %w", err)
		}
	}
	ix.seq++
	ix.alive[id] = false
	if ix.srcComplete {
		ix.sources[id] = nil
	}
	ix.liveCount.Add(-1)
	ix.live.Swap(&epoch{trie: ep.trie, store: ep.store, ov: ov, stats: ep.stats})
	ix.maybeCompact(ov)
	return nil
}

// maybeCompact, called under ix.mu after a mutation published ov, starts a
// background compaction when the pending-mutation count crosses the
// absolute threshold or a quarter of the live polygon count (the ratio
// trigger keeps small indexes from carrying proportionally huge deltas).
// At most one compaction runs at a time; a trigger that fires while one is
// running is simply dropped — the running compaction's residual check will
// re-trigger on the next mutation if needed.
func (ix *Index) maybeCompact(ov *delta.Overlay) {
	if ix.deltaThreshold < 0 || ov == nil {
		return
	}
	pending := ov.Pending()
	if pending < ix.deltaThreshold && int64(pending*4) < ix.liveCount.Load() {
		return
	}
	if !ix.compactMu.TryLock() {
		return
	}
	go func() {
		defer ix.compactMu.Unlock()
		// Background compaction failing (an unprojectable polygon cannot
		// happen here: every source already passed Insert or the build)
		// leaves the delta serving correctly; nothing to surface beyond
		// the stats not moving.
		_ = ix.compactLocked(context.Background())
	}()
}

// Compact synchronously folds the delta layer into a fresh base and swings
// the result in atomically. Indexes that carry their source polygons (built
// in-process) rerun the full build pipeline over the surviving set (original
// ids kept; removed ids become permanent holes). Indexes without sources —
// resurrected by [Recover] or serving as replication followers — rebuild
// from the live epoch instead: the base trie's cells are re-enumerated with
// tombstoned references dropped, the delta coverings merged on top, and the
// geometry store reassembled from the existing stores. Either way lookups
// and joins keep serving the old epoch until the swap and are never blocked;
// mutations stay possible while the rebuild runs and survive it as a
// residual delta. If a background compaction is already running, Compact
// waits for it and then compacts any residual. On a clean index it is a
// no-op.
//
// Reports ErrImmutable on a deserialized index; on context cancellation
// the rebuild is abandoned and the live state left untouched.
func (ix *Index) Compact(ctx context.Context) error {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	return ix.compactLocked(ctx)
}

// Checkpoint forces the durability pair current: it writes a checkpoint
// snapshot of the present state to the configured snapshot path and rotates
// the write-ahead log down to it. With pending mutations it is exactly a
// Compact (whose checkpoint-on-compaction does the same); on a clean index
// it serializes the current base as-is — the path that gives a
// never-mutated primary a snapshot for followers to bootstrap from.
//
// Reports ErrNoCheckpoint when the index has no WAL or no snapshot path,
// and ErrImmutable on a deserialized index.
func (ix *Index) Checkpoint(ctx context.Context) error {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()

	ix.mu.Lock()
	if !ix.mutable {
		ix.mu.Unlock()
		return ErrImmutable
	}
	if ix.wal == nil || ix.snapshotPath == "" {
		ix.mu.Unlock()
		return ErrNoCheckpoint
	}
	ep := ix.live.Load()
	if ep.ov != nil {
		ix.mu.Unlock()
		return ix.compactLocked(ctx) // compaction checkpoints as it lands
	}
	snapSeq := ix.seq
	ids := aliveIDs(ix.alive)
	idSpace := len(ix.alive)
	ix.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	// The clean epoch is immutable: serialize it outside the mutation lock.
	var idCol []uint32
	if len(ids) != idSpace {
		idCol = ids
	}
	snapTmp, err := stageSnapshot(ix.snapshotPath, ep, ix.kind, ix.precision, idCol, int64(idSpace))
	if err != nil {
		return fmt.Errorf("act: checkpoint: staging snapshot: %w", err)
	}
	defer os.Remove(snapTmp) // no-op once renamed into place

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := commitSnapshot(snapTmp, ix.snapshotPath); err != nil {
		return fmt.Errorf("act: checkpoint: publishing snapshot: %w", err)
	}
	// Mutations may have landed between the snapshot of snapSeq and here;
	// rotation keeps every record above the floor, so they survive.
	if err := ix.wal.Checkpoint(snapSeq); err != nil {
		return fmt.Errorf("act: checkpoint: rotating WAL: %w", err)
	}
	return nil
}

// aliveIDs collects the live polygon ids, ascending.
func aliveIDs(alive []bool) []uint32 {
	ids := make([]uint32, 0, len(alive))
	for id, a := range alive {
		if a {
			ids = append(ids, uint32(id))
		}
	}
	return ids
}

// compactLocked runs one compaction; the caller holds compactMu.
func (ix *Index) compactLocked(ctx context.Context) (err error) {
	// Snapshot the mutation state: the overlay publication point and the
	// inputs it corresponds to. Mutations after this point are not baked
	// into the rebuild; Rebase re-applies them on top.
	ix.mu.Lock()
	if !ix.mutable {
		ix.mu.Unlock()
		return ErrImmutable
	}
	ep := ix.live.Load()
	if ep.ov == nil {
		ix.mu.Unlock()
		return nil
	}
	snapSeq := ix.seq
	srcComplete := ix.srcComplete
	idSpace := len(ix.alive)
	var srcs []*Polygon
	var ids []uint32
	if srcComplete {
		srcs = make([]*Polygon, len(ix.sources))
		copy(srcs, ix.sources)
	} else {
		ids = aliveIDs(ix.alive)
	}
	ix.mu.Unlock()

	// Past the no-op checks: this run will rebuild the base, so it counts
	// for the observer (duration covers rebuild + swap + checkpoint).
	compactStart := time.Now()
	defer func() { ix.observeCompaction(time.Since(compactStart), err) }()

	var trie *core.Trie
	var store *geostore.Store
	var stats BuildStats
	if srcComplete {
		entries := make([]buildEntry, 0, len(srcs))
		ids = make([]uint32, 0, len(srcs))
		for id, src := range srcs {
			if src != nil {
				entries = append(entries, buildEntry{id: uint32(id), src: src})
				ids = append(ids, uint32(id))
			}
		}
		trie, store, stats, err = ix.pl.run(ctx, entries, idSpace)
	} else {
		// No sources (recovered index or replication follower): rebuild
		// from the epoch itself — base cells plus delta coverings.
		trie, store, stats, err = ix.compactEpoch(ctx, ep, ids, idSpace)
	}
	if err != nil {
		return err
	}

	// Stage the checkpoint snapshot before taking the mutation lock: the
	// compacted epoch is immutable, so the expensive file write needs no
	// exclusion — only the rename + log rotation below does.
	fresh := &epoch{trie: trie, store: store, stats: stats}
	var snapTmp string
	if ix.wal != nil && ix.snapshotPath != "" {
		var idCol []uint32
		if len(ids) != idSpace {
			idCol = ids // sparse: the snapshot needs the v4 id column
		}
		snapTmp, err = stageSnapshot(ix.snapshotPath, fresh, ix.kind, ix.precision, idCol, int64(idSpace))
		if err != nil {
			return fmt.Errorf("act: compact: staging checkpoint snapshot: %w", err)
		}
		defer os.Remove(snapTmp) // no-op once renamed into place
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	cur := ix.live.Load()
	residual, err := cur.ov.Rebase(snapSeq)
	if err != nil {
		return err
	}
	ix.live.Swap(&epoch{trie: trie, store: store, ov: residual, stats: stats})
	ix.compactions.Add(1)
	// Checkpoint: publish the staged snapshot, then truncate the log down
	// to the records the snapshot does not cover. Order matters — the
	// snapshot must be durably linked before any log record is dropped; a
	// crash between the two leaves snapshot + full log, which replays
	// idempotently. An error here does not undo the in-memory compaction
	// (the epoch already swung); the log simply keeps its full history.
	if snapTmp != "" {
		if err := commitSnapshot(snapTmp, ix.snapshotPath); err != nil {
			return fmt.Errorf("act: compact: publishing checkpoint snapshot: %w", err)
		}
		if err := ix.wal.Checkpoint(snapSeq); err != nil {
			return fmt.Errorf("act: compact: rotating WAL: %w", err)
		}
	}
	return nil
}

// compactEpoch rebuilds a fresh base from the serving epoch itself, for
// indexes that carry no source polygons: the base trie's covering cells are
// re-enumerated with tombstoned references filtered out and fed straight
// into the super-covering merge (supercover.Builder.AddCell), the delta
// polygons' retained coverings are merged on top through the normal Add
// path, and the geometry store is reassembled by id from the base store and
// the delta geometry. No covering is recomputed, so the result preserves
// each polygon's cells exactly as the process that originally covered it
// built them. ids is the live id set the rebuild must serve.
func (ix *Index) compactEpoch(ctx context.Context, ep *epoch, ids []uint32, idSpace int) (*core.Trie, *geostore.Store, BuildStats, error) {
	defer ix.keepMapped() // the walk may read a file-mapped arena
	var stats BuildStats
	stats.NumPolygons = len(ids)
	// The epoch's recorded precision covers the base polygons; delta
	// coverings can only have been built at the index's own bound, so the
	// max below stays a faithful worst case (an upper bound when the worst
	// polygon has since been removed).
	stats.AchievedPrecisionMeters = ep.stats.AchievedPrecisionMeters

	start := time.Now()
	var scb supercover.Builder
	var keep []supercover.Ref
	err := ep.trie.Cells(func(cell cellid.ID, refs []supercover.Ref) error {
		keep = keep[:0]
		for _, r := range refs {
			if !ep.ov.Tombstoned(r.PolygonID) {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			return nil // every referencing polygon was removed
		}
		return scb.AddCell(cell, keep)
	})
	if err != nil {
		return nil, nil, stats, fmt.Errorf("act: compact: enumerating base cells: %w", err)
	}
	for _, p := range ep.ov.Polys() {
		if err := scb.Add(p.ID, p.Cov); err != nil {
			return nil, nil, stats, fmt.Errorf("act: compact: merging delta polygon %d: %w", p.ID, err)
		}
		if p.Cov.AchievedPrecisionMeters > stats.AchievedPrecisionMeters {
			stats.AchievedPrecisionMeters = p.Cov.AchievedPrecisionMeters
		}
	}
	sc := scb.Build()
	stats.MergeDuration = time.Since(start)
	stats.IndexedCells = sc.NumCells()
	if err := ctx.Err(); err != nil {
		return nil, nil, stats, err
	}

	start = time.Now()
	trie, err := core.Build(sc, core.Config{Fanout: ix.pl.fanout})
	if err != nil {
		return nil, nil, stats, err
	}
	stats.InsertDuration = time.Since(start)

	var store *geostore.Store
	if ix.pl.hasGeom {
		projected := make([]*geom.Polygon, idSpace)
		for _, id := range ids {
			projected[id] = ep.store.Polygon(id) // nil for delta ids
		}
		for _, p := range ep.ov.Polys() {
			projected[p.ID] = p.Geom
		}
		store = geostore.NewSparse(projected)
	}

	ts := trie.ComputeStats()
	stats.TrieBytes = ts.TrieBytes
	stats.TableBytes = ts.TableBytes
	stats.TrieNodes = ts.NumNodes
	return trie, store, stats, nil
}
